// Package describe implements the paper's bidirectional circuit
// representation (§3.2, Fig. 3): NetlistTuple = (netlist, description).
// A rule-based generator renders a topology's structure as a natural-
// language description based on connection type and position matching,
// and a parser recovers the topology from the description — the two
// directions of the semantic alignment that lets the Artisan-LLM
// manipulate netlists through language.
package describe

import (
	"fmt"
	"strings"

	"artisan/internal/topology"
	"artisan/internal/units"
)

// nodePhrases maps skeleton nodes to their canonical English form.
var nodePhrases = map[string]string{
	"in":  "the input node",
	"n1":  "the first-stage output",
	"n2":  "the second-stage output",
	"out": "the output node",
	"0":   "ground",
}

var phraseNodes = invert(nodePhrases)

// typePhrases maps connection types to canonical noun phrases. Each
// phrase is unique and is the parser's anchor.
var typePhrases = map[topology.ConnType]string{
	topology.ConnR:            "a coupling resistor",
	topology.ConnC:            "a Miller compensation capacitor",
	topology.ConnSeriesRC:     "a nulling resistor in series with a compensation capacitor",
	topology.ConnParallelRC:   "a resistor-capacitor parallel branch",
	topology.ConnGmP:          "a non-inverting feedforward transconductor",
	topology.ConnGmN:          "an inverting feedforward transconductor",
	topology.ConnGmPSeriesC:   "a non-inverting transconductor coupled through a series capacitor",
	topology.ConnGmNSeriesC:   "an inverting transconductor coupled through a series capacitor",
	topology.ConnGmPSeriesR:   "a non-inverting transconductor coupled through a series resistor",
	topology.ConnGmNSeriesR:   "an inverting transconductor coupled through a series resistor",
	topology.ConnGmPSeriesRC:  "a non-inverting transconductor coupled through a series resistor-capacitor pair",
	topology.ConnGmNSeriesRC:  "an inverting transconductor coupled through a series resistor-capacitor pair",
	topology.ConnGmPParallelC: "a non-inverting transconductor with a parallel bypass capacitor",
	topology.ConnGmNParallelC: "an inverting transconductor with a parallel bypass capacitor",
	topology.ConnBufC:         "a unity buffer driving a level-shifted compensation capacitor",
	topology.ConnBufR:         "a unity buffer driving an isolation resistor",
	topology.ConnBufRC:        "a unity buffer driving a series resistor-capacitor branch",
	topology.ConnDFCP:         "a damping-factor-control block with positive polarity",
	topology.ConnDFCN:         "a damping-factor-control block with negative polarity",
	topology.ConnStageP:       "an additional non-inverting gain stage",
	topology.ConnStageN:       "an additional inverting gain stage",
	topology.ConnCascodeC:     "a cascode current-buffer compensation path",
	topology.ConnQFCP:         "a non-inverting transconductor with a damped capacitive coupling",
	topology.ConnQFCN:         "an inverting transconductor with a damped capacitive coupling",
}

var phraseTypes = invertTypes(typePhrases)

func invert(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func invertTypes(m map[topology.ConnType]string) map[string]topology.ConnType {
	out := make(map[string]topology.ConnType, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Describe renders the topology as its canonical structural description.
func Describe(t *topology.Topology) string {
	var b strings.Builder
	if t.TwoStage {
		fmt.Fprintf(&b,
			"This is a two-stage operational amplifier. The input stage has transconductance %s and the inverting output stage %s.",
			val(t.Stages[0].Gm), val(t.Stages[1].Gm))
	} else {
		fmt.Fprintf(&b,
			"This is a three-stage operational amplifier. The input stage has transconductance %s, the second stage %s, and the inverting output stage %s. The second-stage intrinsic gain is %s.",
			val(t.Stages[0].Gm), val(t.Stages[1].Gm), val(t.Stages[2].Gm), val(t.Stages[1].A0))
	}
	for _, c := range t.Conns {
		if c.Type == topology.ConnNone {
			continue
		}
		b.WriteString(" ")
		b.WriteString(describeConn(c))
	}
	return b.String()
}

func describeConn(c topology.Connection) string {
	phrase := typePhrases[c.Type]
	var params []string
	if c.Type.HasGm() {
		params = append(params, "transconductance "+val(c.Gm))
	}
	if c.Type.HasC() {
		params = append(params, "capacitance "+val(c.C))
	}
	if c.Type.HasR() {
		params = append(params, "resistance "+val(c.R))
	}
	where := fmt.Sprintf("from %s to %s", nodePhrases[c.Pos.From], nodePhrases[c.Pos.To])
	if c.Type.ShuntOnly() {
		where = fmt.Sprintf("attached at %s", nodePhrases[c.Pos.From])
	}
	return fmt.Sprintf("%s is connected %s with %s.",
		capitalize(phrase), where, strings.Join(params, " and "))
}

func val(v float64) string { return units.Format(v) }

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// Parse recovers the topology from a canonical (or augmented) description.
func Parse(desc string) (*topology.Topology, error) {
	t := &topology.Topology{Name: "described"}
	sentences := splitSentences(desc)
	if len(sentences) == 0 {
		return nil, fmt.Errorf("describe: empty description")
	}
	sawHeader := false
	for _, s := range sentences {
		low := strings.ToLower(s)
		switch {
		case strings.Contains(low, "three-stage operational amplifier"):
			sawHeader = true
		case strings.Contains(low, "two-stage operational amplifier"):
			sawHeader = true
			t.TwoStage = true
		case strings.Contains(low, "input stage has transconductance"):
			if t.TwoStage {
				vals, err := extractValues(s, "transconductance %s and the inverting output stage %s")
				if err != nil {
					return nil, err
				}
				t.Stages = []topology.Stage{
					{Gm: vals[0], A0: topology.DefaultStageA0[0]},
					{Gm: vals[1], A0: topology.DefaultStageA0[2]},
				}
				continue
			}
			vals, err := extractValues(s, "transconductance %s, the second stage %s, and the inverting output stage %s")
			if err != nil {
				return nil, err
			}
			t.Stages = make([]topology.Stage, 3)
			for i := 0; i < 3; i++ {
				t.Stages[i] = topology.Stage{Gm: vals[i], A0: topology.DefaultStageA0[i]}
			}
		case strings.Contains(low, "second-stage intrinsic gain"):
			v, err := lastValue(s)
			if err != nil {
				return nil, err
			}
			if len(t.Stages) >= 2 {
				t.Stages[1].A0 = v
			}
		default:
			c, ok, err := parseConn(s)
			if err != nil {
				return nil, err
			}
			if ok {
				t.SetConn(c)
			}
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("describe: not a three-stage opamp description")
	}
	if len(t.Stages) == 0 || t.Stages[0].Gm == 0 {
		return nil, fmt.Errorf("describe: stage transconductances missing")
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("describe: parsed topology invalid: %w", err)
	}
	return t, nil
}

func parseConn(sentence string) (topology.Connection, bool, error) {
	low := strings.ToLower(sentence)
	var best topology.ConnType
	bestPhrase := ""
	for phrase, ct := range phraseTypes {
		lp := strings.ToLower(phrase)
		if strings.Contains(low, lp) && len(lp) > len(bestPhrase) {
			best, bestPhrase = ct, lp
		}
	}
	if bestPhrase == "" {
		return topology.Connection{}, false, nil // not a connection sentence
	}
	c := topology.Connection{Type: best}
	// Position.
	if best.ShuntOnly() {
		from, err := nodeAfter(low, "attached at ")
		if err != nil {
			return c, false, err
		}
		c.Pos = topology.Position{From: from, To: "0"}
	} else {
		from, err := nodeAfter(low, "from ")
		if err != nil {
			return c, false, err
		}
		to, err := nodeAfter(low, " to ")
		if err != nil {
			return c, false, err
		}
		c.Pos = topology.Position{From: from, To: to}
	}
	// Parameters.
	var err error
	if best.HasGm() {
		if c.Gm, err = valueAfter(low, "transconductance "); err != nil {
			return c, false, err
		}
	}
	if best.HasC() {
		if c.C, err = valueAfter(low, "capacitance "); err != nil {
			return c, false, err
		}
	}
	if best.HasR() {
		if c.R, err = valueAfter(low, "resistance "); err != nil {
			return c, false, err
		}
	}
	return c, true, nil
}

func nodeAfter(low, marker string) (string, error) {
	i := strings.Index(low, marker)
	if i < 0 {
		return "", fmt.Errorf("describe: missing %q in %q", marker, low)
	}
	rest := low[i+len(marker):]
	bestNode, bestLen := "", 0
	for phrase, node := range phraseNodes {
		if strings.HasPrefix(rest, strings.ToLower(phrase)) && len(phrase) > bestLen {
			bestNode, bestLen = node, len(phrase)
		}
	}
	if bestNode == "" {
		return "", fmt.Errorf("describe: unknown node phrase after %q in %q", marker, low)
	}
	return bestNode, nil
}

func valueAfter(low, marker string) (float64, error) {
	i := strings.Index(low, marker)
	if i < 0 {
		return 0, fmt.Errorf("describe: missing %q in %q", marker, low)
	}
	rest := low[i+len(marker):]
	end := 0
	for end < len(rest) && rest[end] != ' ' && rest[end] != ',' {
		end++
	}
	// A trailing '.' is the sentence period, not a decimal point
	// (decimal points are always followed by digits).
	tok := strings.TrimRight(rest[:end], ".")
	v, err := units.Parse(tok)
	if err != nil {
		return 0, fmt.Errorf("describe: bad value %q after %q: %w", tok, marker, err)
	}
	return v, nil
}

func lastValue(sentence string) (float64, error) {
	fields := strings.Fields(strings.TrimRight(sentence, "."))
	for i := len(fields) - 1; i >= 0; i-- {
		if v, err := units.Parse(strings.TrimRight(fields[i], ".,")); err == nil {
			return v, nil
		}
	}
	return 0, fmt.Errorf("describe: no value in %q", sentence)
}

// splitSentences splits on periods that terminate sentences. Engineering
// values never contain periods followed by spaces, so ". " (or final ".")
// is a safe delimiter, except decimal points inside numbers which are
// never followed by a space.
func splitSentences(text string) []string {
	var out []string
	start := 0
	for i := 0; i < len(text); i++ {
		if text[i] != '.' {
			continue
		}
		atEnd := i == len(text)-1
		if atEnd || text[i+1] == ' ' {
			s := strings.TrimSpace(text[start : i+1])
			if s != "" {
				out = append(out, s)
			}
			start = i + 1
		}
	}
	if s := strings.TrimSpace(text[start:]); s != "" {
		out = append(out, s)
	}
	return out
}

// extractValues pulls the engineering values of a known template sentence
// in order (the %s slots). It simply scans for parseable tokens.
func extractValues(sentence, template string) ([]float64, error) {
	want := strings.Count(template, "%s")
	var vals []float64
	for _, f := range strings.Fields(sentence) {
		tok := strings.Trim(f, ".,")
		if v, err := units.Parse(tok); err == nil {
			vals = append(vals, v)
		}
	}
	// The sentence contains exactly the stage values plus possibly the
	// word "three-stage"? "three-stage" is not parseable. Filter count.
	if len(vals) < want {
		return nil, fmt.Errorf("describe: found %d values in %q, want %d", len(vals), sentence, want)
	}
	return vals[:want], nil
}

// Tuple is one NetlistTuple sample (Eq. 2).
type Tuple struct {
	Netlist     string
	Description string
}

// NewTuple elaborates a topology and pairs the netlist text with the
// description.
func NewTuple(t *topology.Topology, env topology.Env) (Tuple, error) {
	nl, err := t.Elaborate(env)
	if err != nil {
		return Tuple{}, err
	}
	return Tuple{Netlist: nl.String(), Description: Describe(t)}, nil
}
