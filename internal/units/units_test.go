package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"42", 42},
		{"4p", 4e-12},
		{"4pF", 4e-12},
		{"4PF", 4e-12},
		{"251.2u", 251.2e-6},
		{"251.2uA", 251.2e-6},
		{"1MEG", 1e6},
		{"1MEGOhm", 1e6},
		{"1m", 1e-3},
		{"0.7MHz", 0.7e6},
		{"5kHz", 5e3},
		{"2GHz", 2e9},
		{"100Hz", 100},
		{"-3.5m", -3.5e-3},
		{"1e-12", 1e-12},
		{"2.5E6", 2.5e6},
		{"1.5nF", 1.5e-9},
		{"10fF", 10e-15},
		{"3kOhm", 3e3},
		{"1.8V", 1.8},
		{"250uW", 250e-6},
		{"55°", 55},
		{"85dB", 85},
		{"1T", 1e12},
		{"1a", 1e-18},
		{"1µ", 1e-6},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if !ApproxEqual(got, c.want, 1e-12) {
			t.Errorf("Parse(%q) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "  ", "abc", "1x", "1.2.3", "zF", "--3", "1e"} {
		if v, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %g, want error", in, v)
		}
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{42, "42"},
		{4e-12, "4p"},
		{2.512e-4, "251.2u"},
		{1e6, "1MEG"},
		{-1e-3, "-1m"},
		{1.5e3, "1.5k"},
		{2e9, "2G"},
		{3e12, "3T"},
		{7e-15, "7f"},
		{1e-18, "1a"},
	}
	for _, c := range cases {
		if got := Format(c.in); got != c.want {
			t.Errorf("Format(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatUnit(t *testing.T) {
	if got := FormatUnit(4e-12, "F"); got != "4pF" {
		t.Errorf("FormatUnit = %q, want 4pF", got)
	}
	if got := FormatUnit(1e6, "Ohm"); got != "1MOhm" {
		t.Errorf("FormatUnit = %q, want 1MOhm", got)
	}
}

func TestFormatSpecials(t *testing.T) {
	if got := Format(math.NaN()); got != "NaN" {
		t.Errorf("Format(NaN) = %q", got)
	}
	if got := Format(math.Inf(1)); got != "+Inf" {
		t.Errorf("Format(+Inf) = %q", got)
	}
	if got := Format(math.Inf(-1)); got != "-Inf" {
		t.Errorf("Format(-Inf) = %q", got)
	}
}

// Round trip: Format then Parse recovers the value to 4 significant digits.
func TestFormatParseRoundTrip(t *testing.T) {
	f := func(mant float64, exp int8) bool {
		m := math.Abs(mant)
		if m < 1e-3 || m > 1e3 || math.IsNaN(m) || math.IsInf(m, 0) {
			return true // restrict to a sane mantissa range
		}
		e := int(exp)%25 - 12 // exponent in [-12, 12]
		v := m * math.Pow(10, float64(e))
		s := Format(v)
		got, err := Parse(s)
		if err != nil {
			t.Logf("Parse(Format(%g)=%q) error: %v", v, s, err)
			return false
		}
		return ApproxEqual(got, v, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDBRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		d := math.Mod(math.Abs(db), 200)
		return ApproxEqual(DB(FromDB(d)), d, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !ApproxEqual(DB(10), 20, 1e-12) {
		t.Errorf("DB(10) = %g, want 20", DB(10))
	}
}

func TestDegRad(t *testing.T) {
	if !ApproxEqual(Deg(math.Pi), 180, 1e-12) {
		t.Errorf("Deg(pi) = %g", Deg(math.Pi))
	}
	if !ApproxEqual(Rad(90), math.Pi/2, 1e-12) {
		t.Errorf("Rad(90) = %g", Rad(90))
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("not-a-number")
}
