// Package units provides engineering-notation parsing and formatting for
// circuit quantities, plus decibel helpers. It understands the SPICE scale
// suffixes (f, p, n, u, m, k, MEG/M, G, T) with optional unit tails such as
// "F", "Hz", "Ohm", so inputs like "4pF", "251.2u", "1MEG" and "0.7MHz" all
// parse to SI floats.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Scale factors keyed by lower-case suffix. "meg" must be matched before "m".
var scales = []struct {
	suffix string
	factor float64
}{
	{"meg", 1e6},
	{"t", 1e12},
	{"g", 1e9},
	{"k", 1e3},
	{"m", 1e-3},
	{"u", 1e-6},
	{"µ", 1e-6},
	{"n", 1e-9},
	{"p", 1e-12},
	{"f", 1e-15},
	{"a", 1e-18},
}

// unit tails that may follow a scale suffix and are ignored for value purposes.
var unitTails = []string{"ohms", "ohm", "hz", "f", "h", "v", "a", "w", "s", "db", "°"}

// Parse converts an engineering-notation string to a float64 in SI units.
// Examples: "4p" → 4e-12, "4pF" → 4e-12, "1MEG" → 1e6, "0.7MHz" → 7e5,
// "-3.5m" → -3.5e-3, "42" → 42. Case-insensitive. An unadorned "M" means
// milli (SPICE convention); use "MEG" for mega — except when a frequency
// unit tail follows ("MHz"), where M unambiguously means mega.
func Parse(s string) (float64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty string")
	}
	lower := strings.ToLower(t)

	// Split numeric prefix from the alphabetic tail.
	i := 0
	for i < len(lower) {
		c := lower[i]
		if (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' {
			i++
			continue
		}
		// Allow exponent notation 1e-12, 2.5E6.
		if (c == 'e') && i > 0 && i+1 < len(lower) {
			next := lower[i+1]
			if next == '+' || next == '-' || (next >= '0' && next <= '9') {
				i += 2
				for i < len(lower) && lower[i] >= '0' && lower[i] <= '9' {
					i++
				}
				continue
			}
		}
		break
	}
	numPart, tail := lower[:i], lower[i:]
	if numPart == "" {
		return 0, fmt.Errorf("units: no numeric part in %q", s)
	}
	val, err := strconv.ParseFloat(numPart, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad number %q in %q: %w", numPart, s, err)
	}
	if tail == "" {
		return val, nil
	}

	// "MHz", "GHz", "kHz": frequency tails where m/g/k are unambiguous.
	switch tail {
	case "mhz":
		return val * 1e6, nil
	case "ghz":
		return val * 1e9, nil
	case "khz":
		return val * 1e3, nil
	case "hz":
		return val, nil
	}

	for _, sc := range scales {
		if strings.HasPrefix(tail, sc.suffix) {
			rest := tail[len(sc.suffix):]
			if rest == "" || isUnitTail(rest) {
				return val * sc.factor, nil
			}
		}
	}
	if isUnitTail(tail) {
		return val, nil
	}
	return 0, fmt.Errorf("units: unrecognised suffix %q in %q", tail, s)
}

// MustParse is Parse for trusted literals; it panics on error.
func MustParse(s string) float64 {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

func isUnitTail(s string) bool {
	for _, u := range unitTails {
		if s == u {
			return true
		}
	}
	return false
}

// Format renders v with an engineering scale suffix and up to 4 significant
// digits: Format(2.512e-4) → "251.2u". Zero renders as "0".
func Format(v float64) string {
	if v == 0 {
		return "0"
	}
	if math.IsNaN(v) {
		return "NaN"
	}
	if math.IsInf(v, 0) {
		if v > 0 {
			return "+Inf"
		}
		return "-Inf"
	}
	sign := ""
	if v < 0 {
		sign = "-"
		v = -v
	}
	type step struct {
		factor float64
		suffix string
	}
	steps := []step{
		{1e12, "T"}, {1e9, "G"}, {1e6, "MEG"}, {1e3, "k"},
		{1, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},
		{1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"},
	}
	for _, st := range steps {
		if v >= st.factor*0.9999999 {
			return sign + trimFloat(v/st.factor) + st.suffix
		}
	}
	return sign + trimFloat(v/1e-18) + "a"
}

// FormatUnit renders v with a scale suffix followed by a unit, e.g.
// FormatUnit(4e-12, "F") → "4pF". Mega is written "M" (not "MEG") since a
// unit tail disambiguates.
func FormatUnit(v float64, unit string) string {
	s := Format(v)
	s = strings.Replace(s, "MEG", "M", 1)
	return s + unit
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 4, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}

// DB converts a linear magnitude ratio to decibels (20·log10).
func DB(lin float64) float64 { return 20 * math.Log10(lin) }

// FromDB converts decibels to a linear magnitude ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/20) }

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ApproxEqual reports whether a and b agree to within rel relative tolerance
// (or 1e-300 absolute near zero).
func ApproxEqual(a, b, rel float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1e-300 {
		return true
	}
	return d/m <= rel
}
