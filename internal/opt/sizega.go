package opt

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"artisan/internal/sizing"
	"artisan/internal/telemetry"
)

// SizeGAOpts tunes the continuous (real-coded) genetic sizer.
type SizeGAOpts struct {
	Population int
	Tournament int
	// CrossoverP is the probability an offspring is produced by blend
	// crossover (otherwise a mutated copy of one parent).
	CrossoverP float64
	// Elite is how many best individuals survive unchanged.
	Elite int
}

// DefaultSizeGAOpts mirrors the topology GA's small-population setup.
func DefaultSizeGAOpts() SizeGAOpts {
	return SizeGAOpts{Population: 16, Tournament: 3, CrossoverP: 0.6, Elite: 2}
}

// SizeGA runs a real-coded genetic algorithm over a bounded sizing
// problem: tournament selection, blend (BLX-α) crossover, Gaussian
// mutation, and elitism, under a hard evaluation budget. It is the GA
// family's entry in the sizing-backend comparison — same objective and
// bounds as the BO sizer, different search dynamics.
func SizeGA(ctx context.Context, p sizing.Problem, budget int, seed int64, o SizeGAOpts) (*sizing.Result, error) {
	if len(p.Lo) == 0 || len(p.Lo) != len(p.Hi) {
		return nil, fmt.Errorf("opt: bad bounds (%d vs %d)", len(p.Lo), len(p.Hi))
	}
	if p.Eval == nil {
		return nil, fmt.Errorf("opt: nil objective")
	}
	if budget < 8 {
		return nil, fmt.Errorf("opt: SizeGA budget %d too small", budget)
	}
	ctx, span := telemetry.StartSpan(ctx, "opt.ga")
	defer span.End()
	span.SetAttr("mode", "sizing")
	if o.Population < 4 {
		o.Population = 4
	}
	if o.Population > budget/2 {
		o.Population = budget / 2
	}
	if o.Tournament < 2 {
		o.Tournament = 2
	}
	if o.Elite < 0 || o.Elite >= o.Population {
		o.Elite = 1
	}
	d := len(p.Lo)
	rng := rand.New(rand.NewSource(seed))
	res := &sizing.Result{BestY: math.Inf(-1)}
	defer func() { span.SetAttr("evals", fmt.Sprintf("%d", res.Evals)) }()

	clamp := func(x []float64) {
		for i := range x {
			x[i] = math.Max(p.Lo[i], math.Min(p.Hi[i], x[i]))
		}
	}
	eval := func(x []float64) float64 {
		y := p.Eval(x)
		res.Evals++
		if y > res.BestY {
			res.BestY = y
			res.BestX = append([]float64(nil), x...)
		}
		res.History = append(res.History, res.BestY)
		return y
	}

	type indiv struct {
		x []float64
		y float64
	}
	pop := make([]indiv, o.Population)
	for i := range pop {
		x := make([]float64, d)
		for j := range x {
			x[j] = p.Lo[j] + rng.Float64()*(p.Hi[j]-p.Lo[j])
		}
		pop[i] = indiv{x, eval(x)}
	}

	tournament := func() indiv {
		best := pop[rng.Intn(len(pop))]
		for i := 1; i < o.Tournament; i++ {
			c := pop[rng.Intn(len(pop))]
			if c.y > best.y {
				best = c
			}
		}
		return best
	}

	const alpha = 0.4 // BLX blend factor
	for res.Evals+o.Population-o.Elite <= budget {
		if err := ctx.Err(); err != nil {
			span.SetAttr("cancelled", err.Error())
			return res, err
		}
		// Sort descending by score (small population: simple selection).
		for i := 0; i < len(pop); i++ {
			for j := i + 1; j < len(pop); j++ {
				if pop[j].y > pop[i].y {
					pop[i], pop[j] = pop[j], pop[i]
				}
			}
		}
		next := make([]indiv, 0, o.Population)
		next = append(next, pop[:o.Elite]...)
		for len(next) < o.Population && res.Evals < budget {
			child := make([]float64, d)
			if rng.Float64() < o.CrossoverP {
				a, b := tournament().x, tournament().x
				for j := range child {
					lo, hi := math.Min(a[j], b[j]), math.Max(a[j], b[j])
					w := hi - lo
					child[j] = lo - alpha*w + rng.Float64()*(w+2*alpha*w)
				}
			} else {
				copy(child, tournament().x)
				for j := range child {
					child[j] += rng.NormFloat64() * 0.15 * (p.Hi[j] - p.Lo[j])
				}
			}
			clamp(child)
			next = append(next, indiv{child, eval(child)})
		}
		pop = next
	}
	return res, nil
}
