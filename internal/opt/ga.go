package opt

import (
	"context"
	"fmt"
	"math/rand"

	"artisan/internal/spec"
	"artisan/internal/telemetry"
	"artisan/internal/topology"
)

// GA is a genetic-algorithm topology searcher — the third black-box
// family the paper's introduction cites ([17] Mattiussi & Floreano,
// [21] Rojec et al.). It is not part of Table 3 but serves as an
// extension comparator: tournament selection, structural crossover at
// the connection-position level, and the shared mutation operators.

// GAOpts tunes the search.
type GAOpts struct {
	Population int
	Tournament int
	// CrossoverP is the probability an offspring is produced by
	// crossover (otherwise a mutated copy of one parent).
	CrossoverP float64
	// Elite is how many best individuals survive unchanged.
	Elite int
}

// DefaultGAOpts is a small-population steady configuration.
func DefaultGAOpts() GAOpts {
	return GAOpts{Population: 16, Tournament: 3, CrossoverP: 0.6, Elite: 2}
}

// GA runs the genetic search under a hard simulation budget.
func GA(sp spec.Spec, budget int, seed int64, opts GAOpts) (*Result, error) {
	return GAContext(context.Background(), sp, budget, seed, opts)
}

// GAContext is GA with context propagation ("opt.ga" span, cancellation
// between generations).
func GAContext(ctx context.Context, sp spec.Spec, budget int, seed int64, opts GAOpts) (*Result, error) {
	if budget < 20 {
		return nil, fmt.Errorf("opt: GA budget %d too small", budget)
	}
	ctx, span := telemetry.StartSpan(ctx, "opt.ga")
	defer span.End()
	if opts.Population < 4 {
		opts.Population = 4
	}
	if opts.Tournament < 2 {
		opts.Tournament = 2
	}
	if opts.Elite < 0 || opts.Elite >= opts.Population {
		opts.Elite = 1
	}
	rng := rand.New(rand.NewSource(seed))
	sampler := topology.NewSampler(seed + 1)
	ev := newEvaluator(sp, budget)
	defer func() { span.SetAttr("sims", fmt.Sprintf("%d", ev.sims)) }()

	type indiv struct {
		tp    *topology.Topology
		score float64
	}
	pop := make([]indiv, opts.Population)
	for i := range pop {
		tp := sampler.Random()
		tp.Name = "GA"
		pop[i] = indiv{tp, ev.eval(ctx, tp)}
	}

	tournament := func() indiv {
		best := pop[rng.Intn(len(pop))]
		for i := 1; i < opts.Tournament; i++ {
			c := pop[rng.Intn(len(pop))]
			if c.score > best.score {
				best = c
			}
		}
		return best
	}

	for ev.remaining(budget) > opts.Population-opts.Elite {
		if err := ctx.Err(); err != nil {
			span.SetAttr("cancelled", err.Error())
			return ev.best, err
		}
		// Sort descending by score (small population: simple selection).
		for i := 0; i < len(pop); i++ {
			for j := i + 1; j < len(pop); j++ {
				if pop[j].score > pop[i].score {
					pop[i], pop[j] = pop[j], pop[i]
				}
			}
		}
		next := make([]indiv, 0, opts.Population)
		next = append(next, pop[:opts.Elite]...)
		for len(next) < opts.Population && ev.remaining(budget) > 0 {
			var child *topology.Topology
			if rng.Float64() < opts.CrossoverP {
				child = crossover(sampler, tournament().tp, tournament().tp, rng)
			} else {
				child = sampler.Mutate(tournament().tp)
			}
			child.Name = "GA"
			next = append(next, indiv{child, ev.eval(ctx, child)})
		}
		pop = next
	}
	return ev.best, nil
}

// crossover mixes two parents position-wise: the child takes each
// position's connection from a randomly chosen parent, and each stage
// transconductance likewise. Invalid children fall back to a mutation of
// parent a.
func crossover(s *topology.Sampler, a, b *topology.Topology, rng *rand.Rand) *topology.Topology {
	child := &topology.Topology{Name: "GA", Stages: make([]topology.Stage, 3)}
	for i := 0; i < 3; i++ {
		if rng.Intn(2) == 0 {
			child.Stages[i] = a.Stages[i]
		} else {
			child.Stages[i] = b.Stages[i]
		}
	}
	for _, p := range topology.LegalPositions() {
		src := a
		if rng.Intn(2) == 1 {
			src = b
		}
		if c := src.ConnAt(p); c != nil {
			child.SetConn(*c)
		}
	}
	if child.Validate() != nil {
		return s.Mutate(a)
	}
	return child
}
