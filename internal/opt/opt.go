// Package opt implements the two state-of-the-art black-box topology
// optimization baselines the paper compares against (§4.1.1):
//
//   - BOBO (Lu et al., DATE'22 [12]): Bayesian optimization over a
//     continuous embedding of the topology space — connection types are
//     relaxed to continuous codes, element values to log-space
//     coordinates — with a GP surrogate and EI acquisition.
//   - RLBO (Chen et al., ISQED'23 [3]): reinforcement-learning topology
//     search — a REINFORCE-updated softmax policy over structural
//     mutation operators, with short local parameter refinement inside
//     each episode.
//
// Both consume a hard budget of circuit simulations, the quantity that
// dominates the paper's multi-hour runtimes.
package opt

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"artisan/internal/measure"
	"artisan/internal/sizing"
	"artisan/internal/spec"
	"artisan/internal/telemetry"
	"artisan/internal/topology"
)

// Result reports one optimization run.
type Result struct {
	Best    *topology.Topology
	Report  measure.Report
	Score   float64
	Success bool
	Sims    int
	History []float64 // best score after each simulation
}

// evaluator counts simulations and scores topologies under a spec.
type evaluator struct {
	sp     spec.Spec
	best   *Result
	budget int
	sims   int
}

func newEvaluator(sp spec.Spec, budget int) *evaluator {
	return &evaluator{sp: sp, best: &Result{Score: math.Inf(-1)}, budget: budget}
}

// measure elaborates and measures one candidate under the spec's load,
// counting the simulation. A dead context fails the measurement (and so
// poisons the remaining evaluations), which is how cancellation drains
// the optimizers' inner loops quickly.
func (e *evaluator) measure(ctx context.Context, tp *topology.Topology) (measure.Report, error) {
	env := topology.DefaultEnv()
	env.CL, env.RL = e.sp.CL, e.sp.RL
	nl, err := tp.Elaborate(env)
	if err != nil {
		return measure.Report{}, err
	}
	if err := ctx.Err(); err != nil {
		return measure.Report{}, err
	}
	e.sims++
	return measure.AnalyzeContext(ctx, nl, "out")
}

func (e *evaluator) eval(ctx context.Context, tp *topology.Topology) float64 {
	if e.sims >= e.budget {
		return -100 // budget exhausted: the run is over
	}
	rep, err := e.measure(ctx, tp)
	score := -100.0
	if err == nil {
		score = spec.Score(e.sp, rep)
	}
	if score > e.best.Score {
		e.best.Score = score
		e.best.Best = tp.Clone()
		e.best.Report = rep
		e.best.Success = err == nil && e.sp.Satisfied(rep)
	}
	e.best.Sims = e.sims
	e.best.History = append(e.best.History, e.best.Score)
	return score
}

func (e *evaluator) remaining(budget int) int { return budget - e.sims }

// --- BOBO -----------------------------------------------------------------

// emb describes the continuous embedding layout: per legal position one
// type code plus three log-value coordinates, then three stage gm
// coordinates.
type emb struct {
	positions []topology.Position
	types     [][]topology.ConnType
}

func newEmb() *emb {
	e := &emb{positions: topology.LegalPositions()}
	for _, p := range e.positions {
		e.types = append(e.types, topology.LegalTypesAt(p))
	}
	return e
}

func (e *emb) dim() int { return len(e.positions)*4 + 3 }

// decode lowers a point of the continuous embedding space to a topology.
func (e *emb) decode(x []float64) *topology.Topology {
	tp := &topology.Topology{Name: "BOBO", Stages: make([]topology.Stage, 3)}
	for i := 0; i < 3; i++ {
		gm := math.Exp(logGmLo + x[len(x)-3+i]*(logGmHi-logGmLo))
		a0 := topology.DefaultStageA0[i]
		tp.Stages[i] = topology.Stage{Gm: gm, A0: a0}
	}
	for i, p := range e.positions {
		base := i * 4
		types := e.types[i]
		idx := int(x[base] * float64(len(types)))
		if idx >= len(types) {
			idx = len(types) - 1
		}
		ct := types[idx]
		if ct == topology.ConnNone {
			continue
		}
		c := topology.Connection{Pos: p, Type: ct}
		if ct.HasGm() {
			c.Gm = math.Exp(logGmLo + x[base+1]*(logGmHi-logGmLo))
		}
		if ct.HasC() {
			c.C = math.Exp(logCLo + x[base+2]*(logCHi-logCLo))
		}
		if ct.HasR() {
			c.R = math.Exp(logRLo + x[base+3]*(logRHi-logRLo))
		}
		tp.SetConn(c)
	}
	return tp
}

var (
	logGmLo, logGmHi = math.Log(1e-6), math.Log(3e-3)
	logCLo, logCHi   = math.Log(0.1e-12), math.Log(20e-12)
	logRLo, logRHi   = math.Log(1e3), math.Log(1e6)
)

// BOBO runs Bayesian optimization over the topology embedding with the
// given simulation budget.
func BOBO(sp spec.Spec, budget int, seed int64) (*Result, error) {
	return BOBOContext(context.Background(), sp, budget, seed)
}

// BOBOContext is BOBO with context propagation: the run emits an
// "opt.bobo" span when the context carries a tracer, and cancellation
// stops the underlying BO loop at the next iteration boundary.
func BOBOContext(ctx context.Context, sp spec.Spec, budget int, seed int64) (*Result, error) {
	if budget < 20 {
		return nil, fmt.Errorf("opt: BOBO budget %d too small", budget)
	}
	ctx, span := telemetry.StartSpan(ctx, "opt.bobo")
	defer span.End()
	e := newEmb()
	ev := newEvaluator(sp, budget)
	defer func() { span.SetAttr("sims", fmt.Sprintf("%d", ev.sims)) }()
	d := e.dim()
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := range hi {
		hi[i] = 1
	}
	init := budget / 4
	prob := sizing.Problem{Lo: lo, Hi: hi, Eval: func(x []float64) float64 {
		tp := e.decode(x)
		if tp.Validate() != nil {
			return -100
		}
		return ev.eval(ctx, tp)
	}}
	_, err := sizing.OptimizeContext(ctx, prob, sizing.Options{
		InitSamples: init, Iterations: budget - init, Candidates: 256, Seed: seed})
	if err != nil {
		return nil, err
	}
	return ev.best, nil
}

// --- RLBO -----------------------------------------------------------------

// RLBO runs REINFORCE over structural mutation operators: episodes of
// mutations from a seeded skeleton, a softmax policy over move kinds
// updated by the episode advantage, and a short Nelder–Mead parameter
// refinement of the per-episode best.
func RLBO(sp spec.Spec, budget int, seed int64) (*Result, error) {
	return RLBOContext(context.Background(), sp, budget, seed)
}

// RLBOContext is RLBO with context propagation ("opt.rlbo" span,
// cancellation between episodes).
func RLBOContext(ctx context.Context, sp spec.Spec, budget int, seed int64) (*Result, error) {
	if budget < 20 {
		return nil, fmt.Errorf("opt: RLBO budget %d too small", budget)
	}
	ctx, span := telemetry.StartSpan(ctx, "opt.rlbo")
	defer span.End()
	rng := rand.New(rand.NewSource(seed))
	sampler := topology.NewSampler(seed + 1)
	ev := newEvaluator(sp, budget)
	defer func() { span.SetAttr("sims", fmt.Sprintf("%d", ev.sims)) }()

	// Policy: softmax logits over the mutation kinds.
	logits := make([]float64, 5)
	sample := func() int {
		mx := logits[0]
		for _, l := range logits {
			if l > mx {
				mx = l
			}
		}
		sum := 0.0
		ps := make([]float64, len(logits))
		for i, l := range logits {
			ps[i] = math.Exp(l - mx)
			sum += ps[i]
		}
		r := rng.Float64() * sum
		for i, p := range ps {
			r -= p
			if r <= 0 {
				return i
			}
		}
		return len(ps) - 1
	}

	const stepsPerEpisode = 6
	baseline := 0.0
	nEp := 0
	for ev.remaining(budget) > stepsPerEpisode+2 {
		if err := ctx.Err(); err != nil {
			span.SetAttr("cancelled", err.Error())
			return ev.best, err
		}
		// Episode start: a random topology. (A black-box searcher has no
		// expert prior — it does not know the Miller-compensation seeds a
		// human would start from; that asymmetry is the paper's point.)
		cur := sampler.Random()
		cur.Name = "RLBO"
		curScore := ev.eval(ctx, cur)
		var actions []int
		for step := 0; step < stepsPerEpisode && ev.remaining(budget) > 2; step++ {
			kind := sample()
			actions = append(actions, kind)
			// Follow the policy's trajectory (REINFORCE explores; it does
			// not hill-climb within an episode).
			cur = mutateKind(sampler, cur, kind)
			curScore = ev.eval(ctx, cur)
		}
		// REINFORCE update with a running baseline.
		nEp++
		adv := curScore - baseline
		baseline += (curScore - baseline) / float64(nEp)
		lr := 0.2
		for _, a := range actions {
			// ∂logπ/∂logit_a = 1 − π_a ≈ simple signed update
			logits[a] += lr * sign(adv) / float64(len(actions))
		}
	}
	// Short local refinement of the incumbent (TOTAL's sizing inner
	// loop); capped so the run stays exploration-dominated.
	if ev.best.Best != nil && ev.remaining(budget) > 8 {
		cap := ev.sims + 30
		if cap < budget {
			ev.budget = cap
		}
		refineBest(ctx, ev, ev.budget)
		ev.budget = budget
	}
	return ev.best, nil
}

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

func mutateKind(s *topology.Sampler, tp *topology.Topology, kind int) *topology.Topology {
	// The sampler's Mutate picks its own kind; to bias by policy we
	// resample until the structural effect matches the requested class.
	// Classes: 0 add, 1 remove, 2 retype, 3 value jitter, 4 stage jitter.
	for i := 0; i < 8; i++ {
		m := s.Mutate(tp)
		switch kind {
		case 0:
			if len(m.Conns) > len(tp.Conns) {
				return m
			}
		case 1:
			if len(m.Conns) < len(tp.Conns) {
				return m
			}
		default:
			if len(m.Conns) == len(tp.Conns) {
				return m
			}
		}
	}
	return s.Mutate(tp)
}

// refineBest spends the remaining budget on Nelder–Mead over the
// incumbent's continuous parameters.
func refineBest(ctx context.Context, ev *evaluator, budget int) {
	base := ev.best.Best.Clone()
	var cur []float64
	var setters []func(tp *topology.Topology, v float64)
	addSlot := func(v float64, set func(tp *topology.Topology, v float64)) {
		cur = append(cur, math.Log(v))
		setters = append(setters, set)
	}
	for i := range base.Stages {
		i := i
		addSlot(base.Stages[i].Gm, func(tp *topology.Topology, v float64) { tp.Stages[i].Gm = v })
	}
	for i := range base.Conns {
		i := i
		c := base.Conns[i]
		if c.Type.HasGm() {
			addSlot(c.Gm, func(tp *topology.Topology, v float64) { tp.Conns[i].Gm = v })
		}
		if c.Type.HasC() {
			addSlot(c.C, func(tp *topology.Topology, v float64) { tp.Conns[i].C = v })
		}
	}
	lo := make([]float64, len(cur))
	hi := make([]float64, len(cur))
	for i := range cur {
		lo[i] = cur[i] - math.Log(3)
		hi[i] = cur[i] + math.Log(3)
	}
	iters := ev.remaining(budget) - len(cur) - 2
	if iters < 2 {
		return
	}
	prob := sizing.Problem{Lo: lo, Hi: hi, Eval: func(x []float64) float64 {
		tp := base.Clone()
		for i, set := range setters {
			set(tp, math.Exp(x[i]))
		}
		if tp.Validate() != nil {
			return -100
		}
		return ev.eval(ctx, tp)
	}}
	_, _ = sizing.NelderMead(prob, cur, iters/2)
}
