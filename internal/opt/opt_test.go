package opt

import (
	"math"
	"math/rand"
	"testing"

	"artisan/internal/spec"
	"artisan/internal/topology"
)

func TestBOBORunsWithinBudget(t *testing.T) {
	g1, _ := spec.Group("G-1")
	res, err := BOBO(g1, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sims > 60 {
		t.Errorf("Sims = %d exceeds budget 60", res.Sims)
	}
	if res.Best == nil {
		t.Fatal("no best topology")
	}
	if math.IsInf(res.Score, -1) {
		t.Error("no candidate was ever scored")
	}
	if err := res.Best.Validate(); err != nil {
		t.Errorf("best topology invalid: %v", err)
	}
	// History is monotone best-so-far.
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Fatalf("history not monotone at %d", i)
		}
	}
}

func TestRLBORunsWithinBudget(t *testing.T) {
	g1, _ := spec.Group("G-1")
	res, err := RLBO(g1, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sims > 60 {
		t.Errorf("Sims = %d exceeds budget 60", res.Sims)
	}
	if res.Best == nil {
		t.Fatal("no best topology")
	}
	if err := res.Best.Validate(); err != nil {
		t.Errorf("best topology invalid: %v", err)
	}
}

func TestBudgetValidation(t *testing.T) {
	g1, _ := spec.Group("G-1")
	if _, err := BOBO(g1, 5, 1); err == nil {
		t.Error("tiny BOBO budget accepted")
	}
	if _, err := RLBO(g1, 5, 1); err == nil {
		t.Error("tiny RLBO budget accepted")
	}
}

// The headline comparison property: with the paper-scale budget the
// black-box baselines succeed only sporadically (Table 3 reports 0–4/10),
// in particular far below Artisan's 7–9/10. We run a few seeds of each on
// G-1 and require the success count to stay in the low band — if a
// baseline suddenly solved every seed the reproduction would be broken in
// the other direction.
func TestBaselinesAreWeak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed optimization in -short mode")
	}
	g1, _ := spec.Group("G-1")
	succBO, succRL := 0, 0
	const seeds = 4
	for s := int64(0); s < seeds; s++ {
		if r, err := BOBO(g1, 120, s); err == nil && r.Success {
			succBO++
		}
		if r, err := RLBO(g1, 120, s); err == nil && r.Success {
			succRL++
		}
	}
	if succBO == seeds {
		t.Errorf("BOBO succeeded on all %d seeds; expected sporadic success", seeds)
	}
	if succRL == seeds {
		t.Errorf("RLBO succeeded on all %d seeds; expected sporadic success", seeds)
	}
	t.Logf("BOBO %d/%d, RLBO %d/%d successes at budget 120", succBO, seeds, succRL, seeds)
}

func TestEmbeddingDecode(t *testing.T) {
	e := newEmb()
	d := e.dim()
	if d != len(topology.LegalPositions())*4+3 {
		t.Fatalf("dim = %d", d)
	}
	// All-zero point: every position decodes its first legal type, which
	// by construction is ConnNone → bare skeleton.
	x := make([]float64, d)
	tp := e.decode(x)
	if len(tp.Conns) != 0 {
		t.Errorf("zero point should decode to bare skeleton, got %d conns", len(tp.Conns))
	}
	if err := tp.Validate(); err != nil {
		t.Error(err)
	}
	// All-one-ish point decodes every position to its last legal type.
	for i := range x {
		x[i] = 0.999
	}
	tp2 := e.decode(x)
	if len(tp2.Conns) != len(topology.LegalPositions()) {
		t.Errorf("full point: %d conns, want every position occupied", len(tp2.Conns))
	}
	if err := tp2.Validate(); err != nil {
		t.Errorf("full decode invalid: %v", err)
	}
}

func TestMutateKindClasses(t *testing.T) {
	s := topology.NewSampler(3)
	tp := topology.NMC(30e-6, 40e-6, 250e-6, 4e-12, 3e-12)
	grew, shrank := false, false
	for i := 0; i < 30; i++ {
		if len(mutateKind(s, tp, 0).Conns) > len(tp.Conns) {
			grew = true
		}
		if len(mutateKind(s, tp, 1).Conns) < len(tp.Conns) {
			shrank = true
		}
	}
	if !grew || !shrank {
		t.Errorf("mutation classes not honoured: grew=%v shrank=%v", grew, shrank)
	}
}

func TestSign(t *testing.T) {
	if sign(3) != 1 || sign(-2) != -1 || sign(0) != 0 {
		t.Error("sign broken")
	}
}

func TestGARunsWithinBudget(t *testing.T) {
	g1, _ := spec.Group("G-1")
	res, err := GA(g1, 80, 3, DefaultGAOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sims > 80 {
		t.Errorf("Sims = %d exceeds budget", res.Sims)
	}
	if res.Best == nil || res.Best.Validate() != nil {
		t.Fatal("no valid best topology")
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Fatalf("history not monotone at %d", i)
		}
	}
}

func TestGAValidation(t *testing.T) {
	g1, _ := spec.Group("G-1")
	if _, err := GA(g1, 5, 1, DefaultGAOpts()); err == nil {
		t.Error("tiny budget accepted")
	}
	// Degenerate options are clamped, not fatal.
	if _, err := GA(g1, 40, 1, GAOpts{Population: 1, Tournament: 1, Elite: 99}); err != nil {
		t.Errorf("clamping failed: %v", err)
	}
}

func TestCrossoverProducesValidChildren(t *testing.T) {
	s := topology.NewSampler(5)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		a, b := s.Random(), s.Random()
		child := crossover(s, a, b, rng)
		if err := child.Validate(); err != nil {
			t.Fatalf("invalid child at %d: %v", i, err)
		}
	}
}
