package server

// GET /topology/sample exposes the constrained random topology
// generator over HTTP: a seeded, reproducible draw from the 2–4 stage
// design space, returned with its elaborated netlist. The loadgen
// genbench profile uses the same generator in-process; this endpoint
// lets external harnesses (and curious humans) pull cache-hostile
// workloads from a running node.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"artisan/internal/topology"
)

// TopologySampleResponse is the GET /topology/sample reply.
type TopologySampleResponse struct {
	Seed     int64           `json:"seed"`
	Name     string          `json:"name"`
	Stages   int             `json:"stages"`
	Families []string        `json:"families"`
	Topology json.RawMessage `json:"topology"`
	Netlist  string          `json:"netlist"`
}

// handleTopologySample serves GET /topology/sample?seed=N.
func (s *Server) handleTopologySample(w http.ResponseWriter, r *http.Request) {
	seed := int64(1)
	if q := r.URL.Query().Get("seed"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad seed %q", q))
			return
		}
		seed = v
	}
	topo, nl, err := topology.NewGenerator(seed).Netlist()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	blob, err := topo.ToJSON()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, TopologySampleResponse{
		Seed:     seed,
		Name:     topo.Name,
		Stages:   topo.NumStages(),
		Families: topo.CompFamilies(),
		Topology: blob,
		Netlist:  nl.String(),
	})
}
