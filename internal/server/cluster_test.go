package server

// Tests for the distributed serving tier's per-node surface: draining
// readiness, per-tenant admission with Retry-After, queue saturation on
// /stats, and journal replay through the public HTTP API.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// doJSONHdr is doJSON plus request headers.
func doJSONHdr(t *testing.T, srv http.Handler, method, path string, body any, hdr map[string]string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	var buf strings.Builder
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, strings.NewReader(buf.String()))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

// TestHealthzDraining: after StartDraining the readiness probe answers
// 503 so the router pulls the node, while the API keeps serving until
// the drain completes.
func TestHealthzDraining(t *testing.T) {
	s := New()
	rec, _ := doJSON(t, s, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz before drain = %d", rec.Code)
	}
	s.StartDraining()
	if !s.Draining() {
		t.Fatal("Draining() false after StartDraining")
	}
	rec, body := doJSON(t, s, "GET", "/healthz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", rec.Code)
	}
	var health struct {
		Status string `json:"status"`
		Node   string `json:"node"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "draining" {
		t.Fatalf("status = %q, want draining", health.Status)
	}
	// In-flight work still completes: the design endpoint stays up.
	rec, _ = doJSON(t, s, "POST", "/design", map[string]string{"group": "G-1"})
	if rec.Code != http.StatusOK {
		t.Fatalf("design during drain = %d, want 200 (drain only flips readiness)", rec.Code)
	}
}

// TestTenantRateLimit: a tenant over its token bucket gets 429 with a
// Retry-After derived from the bucket wait; other tenants are isolated.
func TestTenantRateLimit(t *testing.T) {
	s := NewWithOptions(Options{Workers: 2, TenantRate: 0.5, TenantBurst: 2})
	req := map[string]string{"group": "G-1"}

	for i := 0; i < 2; i++ {
		rec, body := doJSONHdr(t, s, "POST", "/design", req, map[string]string{"X-Tenant": "alice"})
		if rec.Code != http.StatusOK {
			t.Fatalf("alice burst request %d = %d: %s", i, rec.Code, body)
		}
	}
	rec, _ := doJSONHdr(t, s, "POST", "/design", req, map[string]string{"X-Tenant": "alice"})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("alice over-rate = %d, want 429", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", rec.Header().Get("Retry-After"))
	}
	// Bob's bucket is untouched by alice's shed.
	rec, body := doJSONHdr(t, s, "POST", "/design", req, map[string]string{"X-Tenant": "bob"})
	if rec.Code != http.StatusOK {
		t.Fatalf("bob after alice's shed = %d: %s", rec.Code, body)
	}

	// The shed shows up in admission accounting and metrics.
	_, statsBody := doJSON(t, s, "GET", "/stats", nil)
	var stats struct {
		Admission struct {
			Admitted int64 `json:"admitted"`
			Shed     int64 `json:"shed"`
			Tenants  []struct {
				Tenant string `json:"tenant"`
			} `json:"tenants"`
		} `json:"admission"`
	}
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admission.Admitted != 3 || stats.Admission.Shed != 1 {
		t.Fatalf("admission totals = %+v, want 3 admitted / 1 shed", stats.Admission)
	}
	rec, metricsBody := doJSON(t, s, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	for _, want := range []string{
		`artisan_admit_total{tenant="alice"} 2`,
		`artisan_shed_total{tenant="alice",reason="rate"} 1`,
		`artisan_admit_total{tenant="bob"} 1`,
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestBatchAdmissionChargesItems: a batch is charged as its item count,
// so a burst-2 tenant cannot sneak 5 items through one request.
func TestBatchAdmissionChargesItems(t *testing.T) {
	s := NewWithOptions(Options{Workers: 2, TenantRate: 0.5, TenantBurst: 2})
	items := make([]map[string]string, 5)
	for i := range items {
		items[i] = map[string]string{"group": "G-1"}
	}
	rec, _ := doJSONHdr(t, s, "POST", "/design/batch", map[string]any{"items": items},
		map[string]string{"X-Tenant": "carol"})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("5-item batch against burst 2 = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed batch missing Retry-After")
	}
	// A batch within the burst is fine.
	rec, _ = doJSONHdr(t, s, "POST", "/design/batch", map[string]any{"items": items[:2]},
		map[string]string{"X-Tenant": "carol"})
	if rec.Code != http.StatusOK {
		t.Fatalf("2-item batch = %d, want 200", rec.Code)
	}
}

// TestStatsQueueFields: /stats reports queue saturation under the
// documented keys (satellite: Retry-After and queue_depth/queue_capacity
// observability).
func TestStatsQueueFields(t *testing.T) {
	s := NewWithOptions(Options{Workers: 1, Queue: 7})
	_, body := doJSON(t, s, "GET", "/stats", nil)
	var stats struct {
		QueueDepth    *int   `json:"queue_depth"`
		QueueCapacity *int   `json:"queue_capacity"`
		Node          string `json:"node"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.QueueDepth == nil || stats.QueueCapacity == nil {
		t.Fatalf("stats missing queue_depth/queue_capacity: %s", body)
	}
	if *stats.QueueCapacity != 7 {
		t.Fatalf("queue_capacity = %d, want 7", *stats.QueueCapacity)
	}
}

// TestPersistReplayHTTP: a design served before a restart is visible
// after it — the journal replays the result into the cache, so the same
// request over the public API is a cache hit, not a re-run.
func TestPersistReplayHTTP(t *testing.T) {
	dir := t.TempDir()
	req := map[string]string{"group": "G-2"}

	s1, err := NewServer(Options{Workers: 2, DataDir: dir, NodeID: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	rec, body1 := doJSON(t, s1, "POST", "/design", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("design = %d: %s", rec.Code, body1)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, err := NewServer(Options{Workers: 2, DataDir: dir, NodeID: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Shutdown(context.Background()) }()

	_, statsBody := doJSON(t, s2, "GET", "/stats", nil)
	var stats struct {
		Replay struct {
			ResultsWarmed int64 `json:"resultsWarmed"`
			JournalJobs   int   `json:"journalJobs"`
		} `json:"replay"`
	}
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Replay.ResultsWarmed != 1 || stats.Replay.JournalJobs != 1 {
		t.Fatalf("replay stats = %+v, want 1 warmed / 1 journaled", stats.Replay)
	}

	rec, body2 := doJSON(t, s2, "POST", "/design", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("design after restart = %d: %s", rec.Code, body2)
	}
	var resp struct {
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(body2, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatalf("design after restart not served from the replayed cache: %s", body2)
	}
}

// TestPersistQueuedJobSurvivesRestart: a job journaled but never run
// (accepted into the queue, process dies) is re-executed by the next
// process's replay and reaches done.
func TestPersistQueuedJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewServer(Options{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Async submit: the job is journaled and queued; kill the store
	// before waiting so the terminal record never lands — the crash.
	rec, body := doJSON(t, s1, "POST", "/jobs", map[string]string{"group": "G-3"})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("jobs submit = %d: %s", rec.Code, body)
	}
	if err := s1.persist.Store().Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewServer(Options{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Shutdown(context.Background()) }()
	// Replay resubmitted it; the same request must complete (either from
	// the replayed run's cache entry or by coalescing onto it).
	rec, body = doJSON(t, s2, "POST", "/design", map[string]string{"group": "G-3"})
	if rec.Code != http.StatusOK {
		t.Fatalf("design after crash recovery = %d: %s", rec.Code, body)
	}
}
