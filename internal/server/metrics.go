package server

// Telemetry wiring: the server owns one telemetry.Registry and one
// telemetry.Tracer, folds the jobs and resilience state into the
// registry as callback instruments (so /stats and /metrics report from
// the same source of truth), and serves GET /metrics (Prometheus text)
// and GET /traces (recent design span trees as JSON).

import (
	"fmt"
	"net/http"
	"strconv"

	"artisan/internal/cluster"
	"artisan/internal/resilience"
	"artisan/internal/telemetry"
)

// designDurationBuckets spans 1 ms – ~1 h: design runs range from a
// cache-warm behavioral session to a full tuned multi-agent run.
var designDurationBuckets = telemetry.ExpBuckets(0.001, 4, 12)

// initTelemetry builds the registry, tracer, and instrument families and
// registers the callback instruments that mirror the jobs manager,
// result cache, resilience counters, and breaker into /metrics. Called
// once from NewWithOptions before routes are registered (the route
// middleware needs the HTTP instruments).
func (s *Server) initTelemetry(o Options) {
	s.reg = telemetry.NewRegistry()
	traceCap := o.TraceCapacity
	if traceCap < 1 {
		traceCap = 64
	}
	s.tracer = telemetry.NewTracer(traceCap)
	s.httpm = telemetry.NewHTTPMetrics(s.reg)
	s.accessLog = o.AccessLog

	s.designs = s.reg.CounterVec("artisan_designs_total",
		"Completed design runs, by designer model, spec group, and outcome (success|fail|error).",
		"method", "group", "outcome")
	s.designSeconds = s.reg.Histogram("artisan_design_duration_seconds",
		"Wall-clock duration of one design run in seconds.",
		designDurationBuckets)

	// Sizing backends: which backend actually served each tuned design
	// (the ladder may have degraded the requested one) and the simulator
	// evaluations the winning run consumed.
	s.sizingBackends = s.reg.CounterVec("artisan_sizing_backend_total",
		"Sizing-backend invocations, by winning backend and design outcome.",
		"backend", "outcome")
	s.sizingEvals = s.reg.Histogram("artisan_sizing_evals",
		"Simulator evaluations consumed by one sizing-backend run.",
		telemetry.ExpBuckets(1, 2, 12))

	// Groundedness checks: transcript-vs-netlist verification verdicts
	// for design requests that set Verify.
	s.groundChecks = s.reg.CounterVec("artisan_ground_checks_total",
		"Groundedness-verifier verdicts over Verify-flagged design runs.",
		"verdict")

	// Jobs: queue depth is the live saturation signal; the cache counters
	// mirror jobs.CacheStats so dashboards and /stats agree by
	// construction.
	s.reg.GaugeFunc("artisan_jobs_queue_depth",
		"Design jobs waiting for a worker.",
		func() float64 { return float64(s.jobs.QueueDepth()) })
	s.reg.GaugeFunc("artisan_jobs_queue_capacity",
		"Bound of the pending job queue.",
		func() float64 { return float64(s.jobs.QueueCapacity()) })
	s.reg.CounterFunc("artisan_jobs_cache_hits_total",
		"Design-result cache hits.",
		func() float64 { return float64(s.jobs.CacheStats().Hits) })
	s.reg.CounterFunc("artisan_jobs_cache_misses_total",
		"Design-result cache misses.",
		func() float64 { return float64(s.jobs.CacheStats().Misses) })
	s.reg.GaugeFunc("artisan_jobs_cache_size",
		"Entries currently in the design-result cache.",
		func() float64 { return float64(s.jobs.CacheStats().Size) })
	s.reg.CounterFunc("artisan_jobs_coalesce_hits_total",
		"Submissions that attached to an identical in-flight job instead of re-running it.",
		func() float64 { return float64(s.jobs.CoalesceHits()) })

	// Batch serving: the size distribution of batch requests, per-item
	// latency measured from batch submit to item completion, and item
	// outcomes by endpoint.
	s.batchSize = s.reg.Histogram("artisan_batch_size",
		"Items per batch request.",
		telemetry.ExpBuckets(1, 2, 10))
	s.batchItemSeconds = s.reg.HistogramVec("artisan_batch_item_seconds",
		"Latency from batch submit to per-item completion in seconds.",
		designDurationBuckets, "endpoint")
	s.batchItems = s.reg.CounterVec("artisan_batch_items_total",
		"Batch items served, by endpoint and outcome (ok|error).",
		"endpoint", "outcome")

	// Admission control: items admitted and shed per tenant (sheds split
	// by reason: over-rate vs wait-queue overflow), and the per-tenant
	// priority-queue depth. The aggregate funcs mirror the admission
	// controller's own counters so /stats and /metrics agree.
	s.admits = s.reg.CounterVec("artisan_admit_total",
		"Design items admitted, by tenant.", "tenant")
	s.sheds = s.reg.CounterVec("artisan_shed_total",
		"Design items shed with 429, by tenant and reason (rate|queue).",
		"tenant", "reason")
	s.tenantQueue = s.reg.GaugeVec("artisan_tenant_queue_depth",
		"Admitted requests waiting in the priority queue, by tenant.", "tenant")
	if s.admission != nil {
		s.reg.CounterFunc("artisan_admission_admitted_total",
			"Design items admitted across all tenants.",
			func() float64 {
				admitted, shed := s.admission.Totals()
				_ = shed
				return float64(admitted)
			})
		s.reg.CounterFunc("artisan_admission_shed_total",
			"Design items shed across all tenants.",
			func() float64 {
				admitted, shed := s.admission.Totals()
				_ = admitted
				return float64(shed)
			})
	}

	// Resilience: one labeled family over the service-wide counter
	// snapshot, one event per label value.
	events := []struct {
		name string
		read func(resilience.Snapshot) int64
	}{
		{"attempts", func(sn resilience.Snapshot) int64 { return sn.Attempts }},
		{"failures", func(sn resilience.Snapshot) int64 { return sn.Failures }},
		{"retries", func(sn resilience.Snapshot) int64 { return sn.Retries }},
		{"fallbacks", func(sn resilience.Snapshot) int64 { return sn.Fallbacks }},
		{"breaker_opens", func(sn resilience.Snapshot) int64 { return sn.BreakerOpens }},
		{"breaker_shorts", func(sn resilience.Snapshot) int64 { return sn.BreakerShorts }},
		{"injected", func(sn resilience.Snapshot) int64 { return sn.Injected }},
		{"hedges", func(sn resilience.Snapshot) int64 { return sn.Hedges }},
	}
	for _, e := range events {
		read := e.read
		s.reg.LabeledCounterFunc("artisan_resilience_events_total",
			"Service-wide fault-tolerance events, by event kind.",
			[]string{"event"}, []string{e.name},
			func() float64 { return float64(read(s.counters.Snapshot())) })
	}
	s.reg.GaugeFunc("artisan_breaker_state",
		"Circuit breaker state guarding the simulator/sizer backends (0=closed, 1=open, 2=half-open).",
		func() float64 { return float64(s.breaker.State()) })

	telemetry.RegisterRuntime(s.reg)
}

// initStoreMetrics registers the persistent store's integrity
// instruments: the corrupt-record counter the acceptance runbook keys
// on, the torn-tail flag, and the read-only poison gauge. Called from
// NewServer once the store exists (after initTelemetry — the store is
// opened later in construction).
func (s *Server) initStoreMetrics(store *cluster.Store) {
	s.reg.CounterFunc("artisan_store_corrupt_total",
		"Journal records that failed their CRC check and were quarantined during replay.",
		func() float64 { return float64(store.Stats().Journal.Corrupt) })
	s.reg.GaugeFunc("artisan_store_readonly",
		"1 when a failed append has poisoned the store into read-only mode.",
		func() float64 {
			if store.ReadOnly() {
				return 1
			}
			return 0
		})
	s.reg.GaugeFunc("artisan_store_jobs",
		"Logical jobs tracked by the persistent store.",
		func() float64 { return float64(store.Len()) })
}

// Registry exposes the server's metric registry — cmd/artisan-server
// mirrors it onto the pprof debug mux, and tests scrape it directly.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Tracer exposes the server's trace ring buffer.
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// handle registers h under the mux pattern wrapped in the telemetry
// middleware, with the pattern itself as the route label — the stable,
// low-cardinality name the per-route counters and latency histograms key
// on.
func (s *Server) handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, s.httpm.Middleware(pattern, s.accessLog, h))
}

// handleTraces serves the most recent design traces (newest first) as
// JSON span trees. ?n= bounds the count.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad n %q: want a positive integer", q))
			return
		}
		limit = v
	}
	roots := s.tracer.Traces()
	if limit > 0 && limit < len(roots) {
		roots = roots[:limit]
	}
	traces := make([]telemetry.SpanJSON, 0, len(roots))
	for _, root := range roots {
		traces = append(traces, root.JSON())
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":  s.tracer.Total(),
		"traces": traces,
	})
}
