package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"artisan/internal/telemetry"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, srv http.Handler) string {
	t.Helper()
	rec, body := doJSON(t, srv, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d %s", rec.Code, body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	return string(body)
}

// TestMetricsEndToEnd is the acceptance check for the observability
// subsystem: after one design round-trip, /metrics must carry the
// per-route HTTP instruments, the design outcome counters, and the
// jobs/resilience state folded in from their own packages.
func TestMetricsEndToEnd(t *testing.T) {
	srv := New()
	rec, body := doJSON(t, srv, "POST", "/design",
		DesignRequest{Group: "G-1", Seed: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("design: %d %s", rec.Code, body)
	}
	// Same key again: exercises the cache-hit counter.
	rec, _ = doJSON(t, srv, "POST", "/design", DesignRequest{Group: "G-1", Seed: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("design (cached): %d", rec.Code)
	}

	text := scrape(t, srv)
	for _, want := range []string{
		// Per-route request counters and latency histograms.
		`artisan_http_requests_total{route="POST /design",code="200"} 2`,
		`artisan_http_request_duration_seconds_bucket{route="POST /design",le="+Inf"} 2`,
		`artisan_http_request_duration_seconds_count{route="POST /design"} 2`,
		// Design outcomes by method/group/outcome; one fresh run, one
		// cache hit (cache hits never reach designFunc).
		`artisan_designs_total{method="artisan",group="G-1",outcome="success"} 1`,
		`artisan_design_duration_seconds_count 1`,
		// Jobs state folded in from jobs.Manager.
		`artisan_jobs_queue_depth 0`,
		`artisan_jobs_cache_hits_total 1`,
		`artisan_jobs_cache_misses_total 1`,
		`artisan_jobs_cache_size 1`,
		// Resilience counters and breaker state folded in.
		`artisan_resilience_events_total{event="retries"}`,
		`artisan_resilience_events_total{event="breaker_opens"} 0`,
		`artisan_breaker_state 0`,
		// Process self-observation.
		`artisan_process_goroutines`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The /metrics scrape itself is counted on the next scrape.
	text = scrape(t, srv)
	if !strings.Contains(text, `artisan_http_requests_total{route="GET /metrics",code="200"} 1`) {
		t.Error("/metrics route not self-counted")
	}
}

// TestStatsAndMetricsAgree pins the single-source-of-truth property:
// the JSON /stats payload and the Prometheus /metrics payload must
// report identical cache and queue numbers because both read the same
// jobs.Manager.
func TestStatsAndMetricsAgree(t *testing.T) {
	srv := New()
	rec, body := doJSON(t, srv, "POST", "/design", DesignRequest{Group: "G-2", Seed: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("design: %d %s", rec.Code, body)
	}
	var stats struct {
		QueueDepth int `json:"queueDepth"`
		Cache      struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	rec, body = doJSON(t, srv, "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	text := scrape(t, srv)
	for metric, val := range map[string]int64{
		"artisan_jobs_queue_depth":        int64(stats.QueueDepth),
		"artisan_jobs_cache_hits_total":   stats.Cache.Hits,
		"artisan_jobs_cache_misses_total": stats.Cache.Misses,
	} {
		line := metric + " " + jsonNumber(val)
		if !strings.Contains(text, line+"\n") {
			t.Errorf("/metrics disagrees with /stats: want line %q", line)
		}
	}
}

func jsonNumber(v int64) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestTracesEndpoint runs one design and expects /traces to return its
// span tree: a server.design root covering the whole core.Design call
// with the session and tool children under it.
func TestTracesEndpoint(t *testing.T) {
	srv := New()
	rec, body := doJSON(t, srv, "POST", "/design", DesignRequest{Group: "G-1", Seed: 2})
	if rec.Code != http.StatusOK {
		t.Fatalf("design: %d %s", rec.Code, body)
	}
	rec, body = doJSON(t, srv, "GET", "/traces", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("traces: %d %s", rec.Code, body)
	}
	var out struct {
		Total  uint64               `json:"total"`
		Traces []telemetry.SpanJSON `json:"traces"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 1 || len(out.Traces) != 1 {
		t.Fatalf("total=%d traces=%d, want 1/1", out.Total, len(out.Traces))
	}
	root := out.Traces[0]
	if root.Name != "server.design" {
		t.Fatalf("root span = %q, want server.design", root.Name)
	}
	names := map[string]int{}
	var walk func(telemetry.SpanJSON)
	walk = func(s telemetry.SpanJSON) {
		names[s.Name]++
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)
	for _, want := range []string{"core.design", "agents.session", "tool.simulator", "mna.sweep"} {
		if names[want] == 0 {
			t.Errorf("trace missing span %q (got %v)", want, names)
		}
	}

	// ?n= bounds the reply; a bad n is a 400.
	rec, _ = doJSON(t, srv, "GET", "/traces?n=1", nil)
	if rec.Code != http.StatusOK {
		t.Errorf("traces?n=1: %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, "GET", "/traces?n=zero", nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("traces?n=zero: %d, want 400", rec.Code)
	}
}

// TestRequestIDCorrelation checks the correlation chain: a client
// X-Request-ID is echoed on the response, stored on the job snapshot,
// and visible in the job listing.
func TestRequestIDCorrelation(t *testing.T) {
	srv := New()
	body := strings.NewReader(`{"group":"G-1","seed":9}`)
	req := httptest.NewRequest("POST", "/jobs", body)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(telemetry.RequestIDHeader, "corr-42")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("jobs submit: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(telemetry.RequestIDHeader); got != "corr-42" {
		t.Errorf("response id = %q, want corr-42", got)
	}
	var j jobJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &j); err != nil {
		t.Fatal(err)
	}
	if j.RequestID != "corr-42" {
		t.Errorf("job requestID = %q, want corr-42", j.RequestID)
	}

	// Without a client header the server generates one.
	rec2, _ := doJSON(t, srv, "GET", "/healthz", nil)
	if rec2.Header().Get(telemetry.RequestIDHeader) == "" {
		t.Error("no generated X-Request-ID on response")
	}
}
