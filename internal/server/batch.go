package server

// Batch serving: POST /design/batch and POST /simulate/batch accept up
// to Options.MaxBatch items, deduplicate identical work items via the
// jobs manager's singleflight coalescing (keyed on the same canonical
// hashes the LRU result cache uses, so in-flight and cached results are
// both reused), fan the unique items out over the shared worker pool,
// and stream results back as NDJSON in completion order. Each line
// carries the item's original index and its own status, so one bad item
// never fails the batch; a trailing summary line closes the stream.

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"artisan/internal/jobs"
	"artisan/internal/measure"
	"artisan/internal/netlist"
	"artisan/internal/telemetry"
)

// BatchItemResult is one NDJSON line of a batch response.
type BatchItemResult struct {
	Index int  `json:"index"`
	OK    bool `json:"ok"`
	// Coalesced: the item attached to an identical in-flight run.
	// Cached: the item was served from the result cache.
	Coalesced bool   `json:"coalesced,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Error     string `json:"error,omitempty"`
	// Design is set for /design/batch items, Metrics for /simulate/batch.
	Design  *DesignResponse `json:"design,omitempty"`
	Metrics *metricsJSON    `json:"metrics,omitempty"`
}

// BatchSummary is the final NDJSON line of a batch response.
type BatchSummary struct {
	Summary   bool `json:"summary"`
	Items     int  `json:"items"`
	OK        int  `json:"okCount"`
	Failed    int  `json:"failed"`
	Coalesced int  `json:"coalesced"`
	Cached    int  `json:"cached"`
}

// checkBatchSize enforces the empty-batch and MaxBatch guards; on
// failure the error response is already written.
func (s *Server) checkBatchSize(w http.ResponseWriter, n int) bool {
	if n == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("batch has no items"))
		return false
	}
	if n > s.opts.MaxBatch {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d items exceeds limit %d", n, s.opts.MaxBatch))
		return false
	}
	return true
}

// handleDesignBatch serves POST /design/batch: {"items":[DesignRequest…]}.
func (s *Server) handleDesignBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Items []DesignRequest `json:"items"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	if !s.checkBatchSize(w, len(req.Items)) {
		return
	}
	// Admission charges the whole batch as its item count and one
	// priority-queue lease, released when the stream finishes.
	release, ok := s.admit(w, r, len(req.Items))
	if !ok {
		return
	}
	defer release()
	requestID := telemetry.RequestIDOf(r.Context())
	var (
		invalid []BatchItemResult
		entries []jobs.BatchEntry
		idxOf   []int // submitted position → original item index
	)
	for i := range req.Items {
		sp, err := s.parseDesignRequest(&req.Items[i])
		if err != nil {
			invalid = append(invalid, BatchItemResult{Index: i, Error: err.Error()})
			continue
		}
		// Coalescing forced on, exactly like jobs.SubmitBatch; routing
		// through submitDesignJob keeps batch items journaled when the
		// persistent store is enabled. The whole batch shares the
		// request's X-Deadline-Ms budget.
		j, shared, err := s.submitDesignJob(sp, req.Items[i], requestID, true, deadlineOf(r))
		entries = append(entries, jobs.BatchEntry{Job: j, Coalesced: shared, Err: err})
		idxOf = append(idxOf, i)
	}
	s.streamBatch(w, r, "design", len(req.Items), invalid, idxOf, entries,
		func(line *BatchItemResult, v any) {
			line.Design = v.(*DesignResponse)
		})
}

// SimulateBatchItem is one item of a POST /simulate/batch body. It is
// the SimulateRequest wire form, aliased for the batch envelope docs.
type SimulateBatchItem = SimulateRequest

// handleSimulateBatch serves POST /simulate/batch: {"items":[{"netlist":…}…]}.
// Simulations route through the same pool and cache as designs; items
// with byte-identical netlists (and output node) coalesce to one solve.
func (s *Server) handleSimulateBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Items []SimulateBatchItem `json:"items"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	if !s.checkBatchSize(w, len(req.Items)) {
		return
	}
	requestID := telemetry.RequestIDOf(r.Context())
	items := make([]jobs.BatchItem, len(req.Items))
	idxOf := make([]int, len(req.Items))
	for i := range req.Items {
		if req.Items[i].Out == "" {
			req.Items[i].Out = "out"
		}
		item := req.Items[i]
		items[i] = jobs.BatchItem{
			Fn: func(ctx context.Context) (any, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				nl, err := netlist.Parse(item.Netlist)
				if err != nil {
					return nil, err
				}
				rep, err := measure.Analyze(nl, item.Out)
				if err != nil {
					return nil, err
				}
				return toMetricsJSON(rep), nil
			},
			Opts: jobs.SubmitOpts{Key: simulateKey(item), RequestID: requestID},
		}
		idxOf[i] = i
	}
	s.streamBatch(w, r, "simulate", len(req.Items), nil, idxOf, s.jobs.SubmitBatch(items),
		func(line *BatchItemResult, v any) {
			line.Metrics = v.(*metricsJSON)
		})
}

// simulateKey canonicalizes a simulation work item for the result cache
// and the coalescing map: the netlist content hash plus the probed node.
func simulateKey(req SimulateRequest) string {
	sum := sha256.Sum256([]byte(req.Netlist))
	return fmt.Sprintf("sim|%x|out=%s", sum[:16], req.Out)
}

// streamBatch drives the NDJSON response: invalid items are emitted
// first, then submitted entries stream back in completion order, then
// the summary line. fill stores a completed job's payload on its line.
// The client context cancels the stream: per-item waiter goroutines
// detach via Job.Wait(ctx) (the underlying jobs keep running for other
// waiters and the cache), and the buffered channel lets any stragglers
// finish their sends, so a mid-batch disconnect leaks nothing.
func (s *Server) streamBatch(w http.ResponseWriter, r *http.Request, endpoint string,
	total int, invalid []BatchItemResult, idxOf []int, entries []jobs.BatchEntry,
	fill func(line *BatchItemResult, v any)) {

	ctx := r.Context()
	s.batchSize.Observe(float64(total))
	itemSeconds := s.batchItemSeconds.With(endpoint)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, canFlush := w.(http.Flusher)
	emit := func(v any) {
		// Encode errors mean the client is gone; the ctx.Done branch below
		// ends the stream.
		_ = enc.Encode(v)
		if canFlush {
			flusher.Flush()
		}
	}

	sum := BatchSummary{Summary: true, Items: total}
	count := func(line BatchItemResult) {
		if line.OK {
			sum.OK++
			s.batchItems.With(endpoint, "ok").Inc()
		} else {
			sum.Failed++
			s.batchItems.With(endpoint, "error").Inc()
		}
		if line.Coalesced {
			sum.Coalesced++
		}
		if line.Cached {
			sum.Cached++
		}
	}
	for _, line := range invalid {
		count(line)
		emit(line)
	}

	start := time.Now()
	ch := make(chan BatchItemResult, len(entries))
	waiting := 0
	for k, e := range entries {
		idx := idxOf[k]
		if e.Err != nil { // rejected at submit (queue full, shutdown)
			line := BatchItemResult{Index: idx, Error: e.Err.Error()}
			count(line)
			emit(line)
			continue
		}
		waiting++
		go func(idx int, e jobs.BatchEntry) {
			v, err := e.Job.Wait(ctx)
			itemSeconds.ObserveSince(start)
			line := BatchItemResult{Index: idx, Coalesced: e.Coalesced}
			if err != nil {
				line.Error = err.Error()
			} else {
				line.OK = true
				line.Cached = e.Job.Snapshot().Cached
				fill(&line, v)
			}
			ch <- line
		}(idx, e)
	}
	for received := 0; received < waiting; received++ {
		select {
		case line := <-ch:
			count(line)
			emit(line)
		case <-ctx.Done():
			return // client gone; waiters drain into the buffered channel
		}
	}
	emit(sum)
}
