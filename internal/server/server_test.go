package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func doJSON(t *testing.T, srv http.Handler, method, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestHealthz(t *testing.T) {
	rec, body := doJSON(t, New(), "GET", "/healthz", nil)
	if rec.Code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", rec.Code, body)
	}
}

func TestGroups(t *testing.T) {
	rec, body := doJSON(t, New(), "GET", "/groups", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("groups: %d", rec.Code)
	}
	var groups []groupJSON
	if err := json.Unmarshal(body, &groups); err != nil {
		t.Fatal(err)
	}
	if len(groups) != 5 || groups[0].Name != "G-1" || groups[4].CLF != 1e-9 {
		t.Errorf("groups payload wrong: %+v", groups)
	}
	if !strings.Contains(groups[0].Prompt, "design an opamp") {
		t.Error("prompt missing")
	}
}

func TestArchitectures(t *testing.T) {
	rec, body := doJSON(t, New(), "GET", "/architectures", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("architectures: %d", rec.Code)
	}
	if !strings.Contains(string(body), "DFCFC") || !strings.Contains(string(body), "damping") {
		t.Errorf("architectures payload: %s", body)
	}
}

func TestDesignByGroup(t *testing.T) {
	rec, body := doJSON(t, New(), "POST", "/design",
		DesignRequest{Group: "G-1", Seed: 1, Transcript: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("design: %d %s", rec.Code, body)
	}
	var resp DesignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Success || resp.Arch != "NMC" {
		t.Errorf("resp = %+v", resp)
	}
	if resp.Metrics == nil || resp.Metrics.GainDB < 85 {
		t.Errorf("metrics = %+v", resp.Metrics)
	}
	if !strings.Contains(resp.Netlist, "Gm1") {
		t.Error("netlist missing")
	}
	if !strings.Contains(resp.Transistor, "M1a") {
		t.Error("transistor netlist missing")
	}
	if !strings.Contains(resp.Transcript, "Q0:") {
		t.Error("transcript missing")
	}
	if resp.Session["qaSteps"] < 5 {
		t.Errorf("session counters: %v", resp.Session)
	}
	if resp.ModeledRun == nil || resp.ModeledRun.Artisan == "" {
		t.Error("modeled runtime missing")
	}
}

func TestDesignByPrompt(t *testing.T) {
	rec, body := doJSON(t, New(), "POST", "/design",
		DesignRequest{Prompt: "gain >85dB, PM >55°, GBW >0.7MHz, Power <250uW, CL = 1nF"})
	if rec.Code != http.StatusOK {
		t.Fatalf("design: %d %s", rec.Code, body)
	}
	var resp DesignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Success || resp.Arch != "DFCFC" {
		t.Errorf("1 nF prompt should yield DFCFC: %+v", resp.Arch)
	}
}

func TestDesignValidation(t *testing.T) {
	cases := []struct {
		name string
		req  any
		code int
	}{
		{"empty", DesignRequest{}, http.StatusBadRequest},
		{"bad group", DesignRequest{Group: "G-9"}, http.StatusBadRequest},
		{"bad prompt", DesignRequest{Prompt: "hello"}, http.StatusBadRequest},
		{"width too big", DesignRequest{Group: "G-1", TreeWidth: 99}, http.StatusBadRequest},
		{"bad temperature", DesignRequest{Group: "G-1", Temperature: 5}, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec, _ := doJSON(t, New(), "POST", "/design", c.req)
		if rec.Code != c.code {
			t.Errorf("%s: code %d, want %d", c.name, rec.Code, c.code)
		}
	}
	// Malformed JSON body.
	req := httptest.NewRequest("POST", "/design", strings.NewReader("{nope"))
	rec := httptest.NewRecorder()
	New().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d", rec.Code)
	}
}

func TestSimulate(t *testing.T) {
	src := `* one pole
V1 in 0 AC 1
G1 0 out in 0 1m
Ro out 0 1MEG
CL out 0 10p
.end`
	rec, body := doJSON(t, New(), "POST", "/simulate", SimulateRequest{Netlist: src})
	if rec.Code != http.StatusOK {
		t.Fatalf("simulate: %d %s", rec.Code, body)
	}
	var m metricsJSON
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.GainDB < 59.9 || m.GainDB > 60.1 {
		t.Errorf("gain = %g", m.GainDB)
	}
	if m.NumPole != 1 || !m.Stable {
		t.Errorf("metrics = %+v", m)
	}
}

func TestSimulateErrors(t *testing.T) {
	rec, _ := doJSON(t, New(), "POST", "/simulate", SimulateRequest{Netlist: "garbage"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad netlist: %d", rec.Code)
	}
	rec, _ = doJSON(t, New(), "POST", "/simulate",
		SimulateRequest{Netlist: "V1 in 0 1\nR1 in 0 1k\n.end", Out: "missing"})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("missing node: %d", rec.Code)
	}
}

func TestMethodRouting(t *testing.T) {
	rec, _ := doJSON(t, New(), "GET", "/design", nil)
	if rec.Code != http.StatusMethodNotAllowed && rec.Code != http.StatusNotFound {
		t.Errorf("GET /design: %d", rec.Code)
	}
}
