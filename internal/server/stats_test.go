package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestStatsEndpoint(t *testing.T) {
	srv := New()
	rec, body := doJSON(t, srv, "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", rec.Code, body)
	}
	var got struct {
		Resilience map[string]int64 `json:"resilience"`
		Breaker    string           `json:"breaker"`
		Config     struct {
			RetryMax         int     `json:"retryMax"`
			BreakerThreshold int     `json:"breakerThreshold"`
			FaultRate        float64 `json:"faultRate"`
		} `json:"config"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Breaker != "closed" {
		t.Errorf("breaker = %q, want closed on a fresh server", got.Breaker)
	}
	if got.Config.RetryMax != 3 || got.Config.BreakerThreshold != 5 {
		t.Errorf("defaults = %+v", got.Config)
	}
}

func TestHealthzCarriesResilience(t *testing.T) {
	rec, body := doJSON(t, New(), "GET", "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var got map[string]any
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"breaker", "resilience"} {
		if _, ok := got[key]; !ok {
			t.Errorf("healthz missing %q: %s", key, body)
		}
	}
}

// A chaos-mode server still designs successfully: retries and the
// fallback ladder absorb the injected faults, the response reports any
// degradation, and the service-wide counters accumulate across requests.
func TestChaosModeServerDesigns(t *testing.T) {
	srv := NewWithOptions(Options{FaultRate: 0.3, RetryMax: 5, Workers: 2})
	var body []byte
	for seed := int64(1); seed <= 5; seed++ {
		var rec *httptest.ResponseRecorder
		rec, body = doJSON(t, srv, "POST", "/design",
			DesignRequest{Group: "G-1", Seed: seed})
		if rec.Code != http.StatusOK {
			t.Fatalf("design under chaos (seed %d): %d %s", seed, rec.Code, body)
		}
		var resp DesignResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Success {
			t.Errorf("chaos-mode design failed (seed %d): %s", seed, resp.FailReason)
		}
	}

	_, body = doJSON(t, srv, "GET", "/stats", nil)
	var stats struct {
		Resilience struct {
			Injected int64 `json:"injected"`
			Attempts int64 `json:"attempts"`
		} `json:"resilience"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Resilience.Injected == 0 || stats.Resilience.Attempts == 0 {
		t.Errorf("service-wide counters not rolled up: %s", body)
	}
}

// Job snapshots surface attempt counts over the wire.
func TestJobJSONCarriesAttempts(t *testing.T) {
	srv := New()
	rec, body := doJSON(t, srv, "POST", "/jobs", DesignRequest{Group: "G-1", Seed: 4})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, body)
	}
	var sub jobJSON
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	j, ok := srv.jobs.Get(sub.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if _, err := j.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	_, body = doJSON(t, srv, "GET", "/jobs/"+sub.ID, nil)
	var got jobJSON
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 for a healthy run", got.Attempts)
	}
}
