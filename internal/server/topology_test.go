package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"artisan/internal/topology"
)

// TestTopologySample: the generator endpoint returns a seeded,
// reproducible draw whose embedded topology JSON re-validates.
func TestTopologySample(t *testing.T) {
	srv := New()
	rec, body := doJSON(t, srv, "GET", "/topology/sample?seed=7", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("sample: %d %s", rec.Code, body)
	}
	var resp TopologySampleResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Seed != 7 || resp.Stages < topology.MinStageCount || resp.Stages > topology.MaxStageCount {
		t.Errorf("resp seed=%d stages=%d", resp.Seed, resp.Stages)
	}
	if len(resp.Families) == 0 {
		t.Error("no compensation families reported")
	}
	if !strings.Contains(resp.Netlist, "Gm1") || !strings.Contains(resp.Netlist, "CL") {
		t.Errorf("netlist missing skeleton devices:\n%s", resp.Netlist)
	}
	topo, err := topology.FromJSON(resp.Topology)
	if err != nil {
		t.Fatalf("embedded topology invalid: %v", err)
	}
	if topo.NumStages() != resp.Stages {
		t.Errorf("stages %d != reported %d", topo.NumStages(), resp.Stages)
	}

	// Same seed, same bytes; bad seed is a client error.
	_, again := doJSON(t, srv, "GET", "/topology/sample?seed=7", nil)
	if string(body) != string(again) {
		t.Error("repeated seed produced different draws")
	}
	rec, _ = doJSON(t, srv, "GET", "/topology/sample?seed=banana", nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad seed: %d", rec.Code)
	}
}

// TestDesignVerify: the Verify flag attaches a groundedness report to
// the design response; the domain designer's transcript is grounded, so
// the verdict metric increments on the pass side.
func TestDesignVerify(t *testing.T) {
	srv := New()
	rec, body := doJSON(t, srv, "POST", "/design",
		DesignRequest{Group: "G-1", Seed: 1, Verify: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("design: %d %s", rec.Code, body)
	}
	var resp DesignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Grounded == nil {
		t.Fatal("Verify did not attach a grounded report")
	}
	if resp.Grounded.Citations == 0 {
		t.Error("verifier extracted no citations from the design transcript")
	}

	// Without the flag the report is omitted.
	_, body = doJSON(t, srv, "POST", "/design", DesignRequest{Group: "G-1", Seed: 1})
	var plain DesignResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Grounded != nil {
		t.Error("grounded report attached without Verify")
	}

	// The verdict counter shows up on /metrics.
	_, metrics := doJSON(t, srv, "GET", "/metrics", nil)
	if !strings.Contains(string(metrics), "artisan_ground_checks_total") {
		t.Error("ground-check metric not exported")
	}
}
