package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// postBatch posts a batch body and decodes the NDJSON reply into
// per-item lines and the trailing summary.
func postBatch(t *testing.T, srv http.Handler, path string, body any) (int, []BatchItemResult, *BatchSummary) {
	t.Helper()
	rec, raw := doJSON(t, srv, "POST", path, body)
	if rec.Code != http.StatusOK {
		return rec.Code, nil, nil
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var (
		lines   []BatchItemResult
		summary *BatchSummary
	)
	dec := json.NewDecoder(bytes.NewReader(raw))
	for {
		var probe map[string]json.RawMessage
		if err := dec.Decode(&probe); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, raw)
		}
		if _, ok := probe["summary"]; ok {
			summary = &BatchSummary{}
			blob, _ := json.Marshal(probe)
			if err := json.Unmarshal(blob, summary); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var line BatchItemResult
		blob, _ := json.Marshal(probe)
		if err := json.Unmarshal(blob, &line); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line)
	}
	return rec.Code, lines, summary
}

func byIndex(lines []BatchItemResult) map[int]BatchItemResult {
	m := make(map[int]BatchItemResult, len(lines))
	for _, l := range lines {
		m[l.Index] = l
	}
	return m
}

func TestDesignBatchHappyPath(t *testing.T) {
	srv := New()
	items := []DesignRequest{
		{Group: "G-1", Seed: 1},
		{Group: "G-1", Seed: 2},
		{Prompt: "gain >85dB, PM >55°, GBW >0.7MHz, Power <250uW, CL = 10pF"},
	}
	code, lines, sum := postBatch(t, srv, "/design/batch", map[string]any{"items": items})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(lines) != 3 || sum == nil {
		t.Fatalf("got %d lines, summary %v", len(lines), sum)
	}
	if sum.Items != 3 || sum.OK != 3 || sum.Failed != 0 {
		t.Errorf("summary %+v", sum)
	}
	got := byIndex(lines)
	for i := 0; i < 3; i++ {
		line, ok := got[i]
		if !ok {
			t.Fatalf("missing line for index %d", i)
		}
		if !line.OK || line.Design == nil {
			t.Errorf("item %d: %+v", i, line)
		} else if !line.Design.Success {
			t.Errorf("item %d design failed: %s", i, line.Design.FailReason)
		}
	}
}

// A duplicate-heavy batch coalesces: the identical items share one run
// and the coalesce-hit counter shows up on /metrics.
func TestDesignBatchCoalescesDuplicates(t *testing.T) {
	srv := New()
	items := make([]DesignRequest, 8)
	for i := range items {
		items[i] = DesignRequest{Group: "G-1", Seed: 99}
	}
	code, lines, sum := postBatch(t, srv, "/design/batch", map[string]any{"items": items})
	if code != http.StatusOK || len(lines) != 8 || sum == nil {
		t.Fatalf("status %d, %d lines", code, len(lines))
	}
	if sum.OK != 8 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.Coalesced+sum.Cached != 7 {
		t.Errorf("coalesced %d + cached %d, want 7 duplicates deduped", sum.Coalesced, sum.Cached)
	}
	if hits := srv.jobs.CoalesceHits(); hits < 1 {
		t.Errorf("manager coalesce hits = %d, want > 0", hits)
	}
	rec, body := doJSON(t, srv, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	var metricsHits float64
	for _, ln := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(ln, "artisan_jobs_coalesce_hits_total ") {
			fmt.Sscanf(ln, "artisan_jobs_coalesce_hits_total %g", &metricsHits)
		}
	}
	if metricsHits < 1 {
		t.Errorf("/metrics coalesce hits = %g, want > 0\n", metricsHits)
	}
	if !strings.Contains(string(body), "artisan_batch_size") {
		t.Error("/metrics missing artisan_batch_size histogram")
	}
}

func TestDesignBatchOversized(t *testing.T) {
	srv := NewWithOptions(Options{MaxBatch: 2})
	items := []DesignRequest{{Group: "G-1"}, {Group: "G-1"}, {Group: "G-1"}}
	rec, body := doJSON(t, srv, "POST", "/design/batch", map[string]any{"items": items})
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", rec.Code, body)
	}
}

func TestDesignBatchEmpty(t *testing.T) {
	rec, _ := doJSON(t, New(), "POST", "/design/batch", map[string]any{"items": []DesignRequest{}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
}

// One malformed item fails alone; its neighbours still succeed.
func TestDesignBatchMalformedItem(t *testing.T) {
	srv := New()
	items := []DesignRequest{
		{Group: "G-1", Seed: 5},
		{Group: "no-such-group"},
		{Spec: json.RawMessage(`{"minGainDB":85,"minGBWHz":7e5,"minPMDeg":55,"maxPowerW":2.5e-4,"clF":1e-11}`)},
		{Spec: json.RawMessage(`{"minGainDB":-3}`)},
	}
	code, lines, sum := postBatch(t, srv, "/design/batch", map[string]any{"items": items})
	if code != http.StatusOK || len(lines) != 4 || sum == nil {
		t.Fatalf("status %d, %d lines", code, len(lines))
	}
	got := byIndex(lines)
	if !got[0].OK || !got[2].OK {
		t.Errorf("valid items failed: %+v / %+v", got[0], got[2])
	}
	if got[1].OK || !strings.Contains(got[1].Error, "unknown group") {
		t.Errorf("item 1: %+v", got[1])
	}
	if got[3].OK || !strings.Contains(got[3].Error, "spec:") {
		t.Errorf("item 3: %+v", got[3])
	}
	if sum.OK != 2 || sum.Failed != 2 {
		t.Errorf("summary %+v", sum)
	}
}

func TestSimulateBatch(t *testing.T) {
	srv := New()
	rc := "* rc\nV1 in 0 AC 1\nR1 in out 10k\nC1 out 0 4p\n.end\n"
	items := []SimulateRequest{
		{Netlist: rc},
		{Netlist: "R1 a 0"}, // parse error: too few fields
		{Netlist: rc},       // duplicate of item 0 → coalesced or cached
	}
	code, lines, sum := postBatch(t, srv, "/simulate/batch", map[string]any{"items": items})
	if code != http.StatusOK || len(lines) != 3 || sum == nil {
		t.Fatalf("status %d, %d lines", code, len(lines))
	}
	got := byIndex(lines)
	if !got[0].OK || got[0].Metrics == nil {
		t.Errorf("item 0: %+v", got[0])
	}
	if got[1].OK || !strings.Contains(got[1].Error, "netlist") {
		t.Errorf("item 1: %+v", got[1])
	}
	if !got[2].OK || (!got[2].Coalesced && !got[2].Cached) {
		t.Errorf("item 2 not deduped: %+v", got[2])
	}
	if sum.OK != 2 || sum.Failed != 1 {
		t.Errorf("summary %+v", sum)
	}
}

// Client cancellation mid-batch: the stream stops, per-item waiters
// detach, and after drain the process is back to its goroutine baseline
// (goleak-style check).
func TestDesignBatchClientCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()

	svc := NewWithOptions(Options{Workers: 1, Queue: 64})
	ts := httptest.NewServer(svc)

	items := make([]DesignRequest, 12)
	for i := range items {
		items[i] = DesignRequest{Group: "G-1", Seed: int64(1000 + i)} // distinct: no coalescing
	}
	body, err := json.Marshal(map[string]any{"items": items})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/design/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one streamed line, then drop the connection mid-batch.
	buf := make([]byte, 1)
	if _, err := io.ReadAtLeast(resp.Body, buf, 1); err != nil {
		t.Fatalf("no stream output before cancel: %v", err)
	}
	cancel()
	resp.Body.Close()

	ts.Close()
	drainCtx, done := context.WithTimeout(context.Background(), 10*time.Second)
	defer done()
	if err := svc.Shutdown(drainCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The waiter goroutines and pool workers must all exit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
