package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"artisan/internal/jobs"
)

// postJSON sends a request with an explicit Content-Type.
func postJSON(t *testing.T, srv http.Handler, path, contentType string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestContentTypeRejected(t *testing.T) {
	body, _ := json.Marshal(DesignRequest{Group: "G-1"})
	for _, path := range []string{"/design", "/jobs", "/simulate"} {
		rec := postJSON(t, New(), path, "text/plain", body)
		if rec.Code != http.StatusUnsupportedMediaType {
			t.Errorf("%s with text/plain: %d, want 415", path, rec.Code)
		}
	}
	// application/json (with charset) is accepted.
	rec := postJSON(t, New(), "/design", "application/json; charset=utf-8", body)
	if rec.Code != http.StatusOK {
		t.Errorf("application/json: %d %s", rec.Code, rec.Body.String())
	}
}

func TestOversizedBody(t *testing.T) {
	huge := []byte(`{"group":"` + strings.Repeat("x", 1<<20) + `"}`)
	for _, path := range []string{"/design", "/jobs", "/simulate"} {
		rec := postJSON(t, New(), path, "application/json", huge)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized: %d, want 413", path, rec.Code)
		}
	}
}

func TestBadJSONOnJobs(t *testing.T) {
	rec := postJSON(t, New(), "/jobs", "application/json", []byte("{nope"))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON: %d", rec.Code)
	}
	rec = postJSON(t, New(), "/jobs", "application/json", []byte(`{"group":"G-9"}`))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad group: %d", rec.Code)
	}
}

func pollJob(t *testing.T, srv http.Handler, id string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec, body := doJSON(t, srv, "GET", "/jobs/"+id, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d %s", id, rec.Code, body)
		}
		var j jobJSON
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatal(err)
		}
		switch j.Status {
		case "done", "failed", "cancelled":
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobJSON{}
}

func TestJobEnqueuePollDone(t *testing.T) {
	srv := New()
	defer srv.Shutdown(context.Background())

	rec, body := doJSON(t, srv, "POST", "/jobs", DesignRequest{Group: "G-1", Seed: 3})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", rec.Code, body)
	}
	var accepted jobJSON
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.ID == "" || (accepted.Status != "queued" && accepted.Status != "running" && accepted.Status != "done") {
		t.Fatalf("accepted = %+v", accepted)
	}

	fin := pollJob(t, srv, accepted.ID)
	if fin.Status != "done" || fin.Started == "" || fin.Finished == "" {
		t.Fatalf("finished job = %+v", fin)
	}
	res, err := json.Marshal(fin.Result)
	if err != nil {
		t.Fatal(err)
	}
	var resp DesignResponse
	if err := json.Unmarshal(res, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Success || resp.Arch != "NMC" {
		t.Errorf("job result = %+v", resp)
	}

	// The listing counts it as done.
	rec, body = doJSON(t, srv, "GET", "/jobs", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /jobs: %d", rec.Code)
	}
	var list struct {
		Jobs   []jobJSON      `json:"jobs"`
		Counts map[string]int `json:"counts"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) == 0 || list.Counts["done"] == 0 {
		t.Errorf("list = %+v", list)
	}
	// Listings never embed full results (poll the job id for those).
	if list.Jobs[0].Result != nil {
		t.Error("list leaked job results")
	}
}

func TestJobGetUnknown(t *testing.T) {
	rec, _ := doJSON(t, New(), "GET", "/jobs/j-999", nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown job: %d", rec.Code)
	}
	rec, _ = doJSON(t, New(), "DELETE", "/jobs/j-999", nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("cancel unknown job: %d", rec.Code)
	}
}

// TestJobCancelQueued pins one worker with an internal blocker job so
// the design job submitted over the API is deterministically queued,
// then cancels it mid-flight via DELETE.
func TestJobCancelQueued(t *testing.T) {
	srv := NewWithOptions(Options{Workers: 1, Queue: 8})
	defer srv.Shutdown(context.Background())

	release := make(chan struct{})
	defer close(release)
	blocker, err := srv.jobs.Submit(func(ctx context.Context) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}, jobs.SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for blocker.Status() != jobs.StatusRunning {
		time.Sleep(time.Millisecond)
	}

	rec, body := doJSON(t, srv, "POST", "/jobs", DesignRequest{Group: "G-2", Seed: 9})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", rec.Code, body)
	}
	var accepted jobJSON
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Status != "queued" {
		t.Fatalf("status = %s, want queued behind blocker", accepted.Status)
	}

	rec, _ = doJSON(t, srv, "DELETE", "/jobs/"+accepted.ID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE: %d", rec.Code)
	}
	fin := pollJob(t, srv, accepted.ID)
	if fin.Status != "cancelled" {
		t.Errorf("status = %s, want cancelled", fin.Status)
	}
	// Cancelling a finished job conflicts.
	rec, _ = doJSON(t, srv, "DELETE", "/jobs/"+accepted.ID, nil)
	if rec.Code != http.StatusConflict {
		t.Errorf("double cancel: %d", rec.Code)
	}
}

// TestQueueFullBackpressure fills the single-slot queue behind a pinned
// worker: the next enqueue must be rejected with 503, not block.
func TestQueueFullBackpressureHTTP(t *testing.T) {
	srv := NewWithOptions(Options{Workers: 1, Queue: 1})
	defer srv.Shutdown(context.Background())

	release := make(chan struct{})
	defer close(release)
	blocker, err := srv.jobs.Submit(func(ctx context.Context) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}, jobs.SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for blocker.Status() != jobs.StatusRunning {
		time.Sleep(time.Millisecond)
	}

	rec, body := doJSON(t, srv, "POST", "/jobs", DesignRequest{Group: "G-1"})
	if rec.Code != http.StatusAccepted { // fills the one queue slot
		t.Fatalf("first enqueue: %d %s", rec.Code, body)
	}
	rec, _ = doJSON(t, srv, "POST", "/jobs", DesignRequest{Group: "G-2"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("second enqueue: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
	// The synchronous endpoint sheds load the same way.
	rec, _ = doJSON(t, srv, "POST", "/design", DesignRequest{Group: "G-3"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("sync design under backpressure: %d, want 503", rec.Code)
	}
}

// TestDesignCacheHit sends the identical request twice: the second reply
// must be served from the LRU cache without a fresh agent session.
func TestDesignCacheHit(t *testing.T) {
	srv := New()
	defer srv.Shutdown(context.Background())
	req := DesignRequest{Group: "G-1", Seed: 11}

	var first, second DesignResponse
	rec, body := doJSON(t, srv, "POST", "/design", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("first: %d %s", rec.Code, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request marked cached")
	}

	rec, body = doJSON(t, srv, "POST", "/design", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("second: %d %s", rec.Code, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second request not served from cache")
	}
	if second.Netlist != first.Netlist || second.FoM != first.FoM ||
		second.Session["simulations"] != first.Session["simulations"] {
		t.Error("cached result differs from original")
	}
	if st := srv.jobs.CacheStats(); st.Hits != 1 {
		t.Errorf("cache stats = %+v, want exactly 1 hit", st)
	}

	// A different seed is a different key: no spurious hit.
	rec, body = doJSON(t, srv, "POST", "/design", DesignRequest{Group: "G-1", Seed: 12})
	if rec.Code != http.StatusOK {
		t.Fatalf("third: %d %s", rec.Code, body)
	}
	var third DesignResponse
	if err := json.Unmarshal(body, &third); err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Error("different seed hit the cache")
	}

	// An async job for the same (spec, options, seed) completes
	// instantly from the cache too.
	rec, body = doJSON(t, srv, "POST", "/jobs", req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("cached job: %d %s", rec.Code, body)
	}
	var j jobJSON
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	if j.Status != "done" || !j.Cached {
		t.Errorf("cached job = %+v, want instant done", j)
	}
}

func TestHealthzReportsPool(t *testing.T) {
	rec, body := doJSON(t, New(), "GET", "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var h struct {
		Status string         `json:"status"`
		Jobs   map[string]int `json:"jobs"`
		Cache  map[string]any `json:"cache"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Cache == nil {
		t.Errorf("healthz = %s", body)
	}
}

// Empty listings must encode as [] / {} — never JSON null.
func TestEmptyListingsNotNull(t *testing.T) {
	rec, body := doJSON(t, New(), "GET", "/jobs", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /jobs: %d", rec.Code)
	}
	s := string(body)
	if !strings.Contains(s, `"jobs":[]`) {
		t.Errorf("empty jobs list not []: %s", s)
	}
	if strings.Contains(s, "null") {
		t.Errorf("null leaked into empty listing: %s", s)
	}
	for _, path := range []string{"/groups", "/architectures"} {
		rec, body := doJSON(t, New(), "GET", path, nil)
		if rec.Code != http.StatusOK || strings.HasPrefix(strings.TrimSpace(string(body)), "null") {
			t.Errorf("%s: %d %s", path, rec.Code, body)
		}
	}
}

// TestServerShutdownDrains: jobs accepted before shutdown complete; new
// submissions are refused afterwards.
func TestServerShutdownDrains(t *testing.T) {
	srv := New()
	rec, body := doJSON(t, srv, "POST", "/jobs", DesignRequest{Group: "G-4", Seed: 5})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("enqueue: %d %s", rec.Code, body)
	}
	var accepted jobJSON
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec, _ = doJSON(t, srv, "GET", "/jobs/"+accepted.ID, nil)
	var fin jobJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &fin); err != nil {
		t.Fatal(err)
	}
	if fin.Status != "done" {
		t.Errorf("job after drain = %s, want done", fin.Status)
	}
	rec, _ = doJSON(t, srv, "POST", "/jobs", DesignRequest{Group: "G-1"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: %d, want 503", rec.Code)
	}
}

// Sanity: the wire form of a snapshot round-trips the essentials.
func TestJobJSONShape(t *testing.T) {
	j := toJobJSON(jobs.Snapshot{
		ID: "j-7", Status: jobs.StatusDone, Cached: true,
		Created: time.Unix(0, 0), Started: time.Unix(1, 0), Finished: time.Unix(2, 0),
		Result: &DesignResponse{Success: true},
	}, true)
	if j.ID != "j-7" || j.Status != "done" || !j.Cached || j.Result == nil {
		t.Errorf("jobJSON = %+v", j)
	}
	if j.Created == "" || j.Started == "" || j.Finished == "" {
		t.Errorf("timestamps missing: %+v", j)
	}
	if _, err := json.Marshal(j); err != nil {
		t.Fatal(err)
	}
}
