package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDesignBackendValidation rejects unknown backend names at parse
// time (request field) and at construction time (server default).
func TestDesignBackendValidation(t *testing.T) {
	rec, body := doJSON(t, New(), "POST", "/design",
		DesignRequest{Group: "G-1", Tune: true, Backend: "annealing"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown backend: code %d %s", rec.Code, body)
	}
	if _, err := NewServer(Options{SizingBackend: "annealing"}); err == nil {
		t.Error("NewServer accepted an unknown default sizing backend")
	}
	if _, err := NewServer(Options{SizingBackend: "hybrid"}); err != nil {
		t.Errorf("NewServer rejected a registered backend: %v", err)
	}
}

// TestDesignBackendRouting runs a tuned design through an explicit
// backend and checks the winning backend shows up in the metrics. The
// seed/temperature pair is chosen so the direct design just misses the
// phase-margin spec, forcing the last-resort tuner to fire.
func TestDesignBackendRouting(t *testing.T) {
	srv := New()
	rec, body := doJSON(t, srv, "POST", "/design",
		DesignRequest{Group: "G-1", Seed: 1, Temperature: 0.9, Tune: true, Backend: "hybrid", Transcript: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("design: %d %s", rec.Code, body)
	}
	var resp DesignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Success {
		t.Fatalf("tuned hybrid design failed: %+v", resp)
	}
	if !strings.Contains(resp.Transcript, "invoking hybrid sizing backend") {
		t.Error("transcript does not record the backend invocation")
	}
	mrec := httptest.NewRecorder()
	srv.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	metrics := mrec.Body.String()
	if !strings.Contains(metrics, `artisan_sizing_backend_total{backend="hybrid",outcome="success"} 1`) {
		t.Errorf("sizing backend counter missing:\n%s", grepLines(metrics, "artisan_sizing"))
	}
	if !strings.Contains(metrics, "artisan_sizing_evals_count 1") {
		t.Errorf("sizing evals histogram missing:\n%s", grepLines(metrics, "artisan_sizing"))
	}
}

// TestDesignBackendDefault: a tuned request without a backend field uses
// the server's configured default, and the cache key separates backends
// (same spec+seed under a different backend is a cache miss).
func TestDesignBackendDefault(t *testing.T) {
	srv := NewWithOptions(Options{SizingBackend: "whitebox"})
	req := DesignRequest{Group: "G-1", Seed: 1, Temperature: 0.9, Tune: true}
	rec, body := doJSON(t, srv, "POST", "/design", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("design: %d %s", rec.Code, body)
	}
	mrec := httptest.NewRecorder()
	srv.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), `artisan_sizing_backend_total{backend="whitebox"`) {
		t.Errorf("default backend not routed:\n%s", grepLines(mrec.Body.String(), "artisan_sizing"))
	}

	// Same request with an explicit different backend must not hit the
	// whitebox run's cache entry.
	req.Backend = "bo"
	rec, body = doJSON(t, srv, "POST", "/design", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("design: %d %s", rec.Code, body)
	}
	var resp DesignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("different backend served from cache: designKey missing backend")
	}
}

// grepLines filters a metrics dump to lines containing sub (test
// diagnostics only).
func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
