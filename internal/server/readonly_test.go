package server

// Read-only poisoning through the public API: a journal write failure
// must turn into a 503 on the submission, flip /healthz to 503 with the
// "store-read-only" cause (so the router sheds the node), surface on
// /stats and /metrics — and the rejected submission must not execute as
// a ghost.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"artisan/internal/jobs"
)

func TestStoreWriteFaultPoisonsNode(t *testing.T) {
	var fail atomic.Bool
	s, err := NewServer(Options{
		Workers: 1,
		DataDir: t.TempDir(),
		NodeID:  "n1",
		StoreWriteFault: func() error {
			if fail.Load() {
				return errors.New("injected disk fault")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()

	// Healthy path first: submissions journal and /healthz is 200.
	rec, body := doJSON(t, s, "POST", "/jobs", map[string]string{"group": "G-1"})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit before fault = %d: %s", rec.Code, body)
	}
	if rec, _ := doJSON(t, s, "GET", "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz before fault = %d", rec.Code)
	}

	fail.Store(true)
	rec, body = doJSON(t, s, "POST", "/jobs", map[string]string{"group": "G-2"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit with dead disk = %d: %s, want 503", rec.Code, body)
	}

	// The node takes itself out of the fleet.
	rec, body = doJSON(t, s, "GET", "/healthz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after poison = %d, want 503", rec.Code)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "store-read-only" {
		t.Fatalf("healthz status = %q, want store-read-only", health.Status)
	}

	// /stats carries the cause; /metrics flips the gauge.
	_, statsBody := doJSON(t, s, "GET", "/stats", nil)
	var stats struct {
		Store struct {
			ReadOnly      bool   `json:"readOnly"`
			ReadOnlyCause string `json:"readOnlyCause"`
		} `json:"store"`
	}
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Store.ReadOnly || !strings.Contains(stats.Store.ReadOnlyCause, "injected disk fault") {
		t.Fatalf("stats store = %+v, want read-only with cause", stats.Store)
	}
	rec, metricsBody := doJSON(t, s, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	if !strings.Contains(string(metricsBody), "artisan_store_readonly 1") {
		t.Fatal("metrics missing artisan_store_readonly 1 after poison")
	}

	// Ghost-cancel: the 503'd submission must not keep burning a worker —
	// the job the manager briefly held is cancelled, and the node drains
	// to zero queued/running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		counts := s.Jobs().Counts()
		if counts[jobs.StatusQueued] == 0 && counts[jobs.StatusRunning] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node never drained after poisoned submit: %v", counts)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
