// Package server exposes the Artisan framework as a JSON HTTP service —
// the "released for public access" form of the paper's abstract. The API
// is deliberately small: design from a spec group or a natural-language
// prompt (synchronously via POST /design or asynchronously via the
// /jobs API), simulate a netlist, and introspect the knowledge base.
//
// All design work — synchronous and asynchronous alike — is routed
// through one jobs.Manager worker pool, so service-wide design
// concurrency is bounded and repeated requests hit the LRU result cache
// instead of re-running the multi-agent session.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"mime"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"artisan/internal/agents"
	"artisan/internal/backend"
	"artisan/internal/cluster"
	"artisan/internal/core"
	"artisan/internal/experiment"
	"artisan/internal/jobs"
	"artisan/internal/llm"
	"artisan/internal/measure"
	"artisan/internal/netlist"
	"artisan/internal/resilience"
	"artisan/internal/spec"
	"artisan/internal/telemetry"
)

// maxBodyBytes bounds every POST body (resource guard).
const maxBodyBytes = 1 << 20 // 1 MiB

// Options configures the service.
type Options struct {
	// MaxTreeWidth bounds client-requested ToT width (resource guard).
	MaxTreeWidth int
	// Workers sizes the design worker pool; default GOMAXPROCS.
	Workers int
	// Queue bounds the pending job queue; default 64.
	Queue int
	// CacheSize bounds the design-result LRU cache; default 128.
	CacheSize int
	// JobTimeout, when positive, deadline-bounds each design run.
	JobTimeout time.Duration
	// RetryMax bounds retry attempts per designer/simulator call inside a
	// design session; default 3.
	RetryMax int
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit breaker guarding the simulator and sizer backends; default 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before probing;
	// default 5s.
	BreakerCooldown time.Duration
	// ToolTimeout, when positive, deadline-bounds each individual tool or
	// designer attempt (the per-attempt deadline of the retry policy).
	ToolTimeout time.Duration
	// FaultRate, when positive, runs the service in chaos mode: every
	// designer and simulator call fails with this probability, injected
	// by a seeded injector derived from each request's seed.
	FaultRate float64
	// AccessLog, when non-nil, receives one structured line per request
	// (request id, method, route, status, bytes, latency).
	AccessLog *slog.Logger
	// TraceCapacity bounds the ring buffer of recent design traces served
	// by GET /traces; default 64.
	TraceCapacity int
	// MaxBatch bounds the item count of one POST /design/batch or
	// POST /simulate/batch request (oversized batches get 413); default 64.
	MaxBatch int
	// NodeID names this node in a multi-node fleet: job ids are prefixed
	// "<NodeID>-j-<n>" (fleet-unique, so the router can map an id back to
	// its owner) and /healthz reports it for the router's membership map.
	NodeID string
	// DataDir, when set, enables the persistent job store: design
	// submissions and state transitions are journaled under this
	// directory, and on startup the journal is replayed — completed
	// results re-warm the cache, interrupted jobs re-execute.
	DataDir string
	// StoreSync fsyncs every journal append (machine-crash durability at
	// a latency cost; default off — process-crash durability only).
	StoreSync bool
	// TenantRate, when positive, enables per-tenant admission control:
	// each tenant (X-Tenant header; "default" when absent) may submit
	// this many design items per second sustained.
	TenantRate float64
	// TenantBurst is the admission token-bucket depth; default 2*TenantRate.
	TenantBurst float64
	// ModelLatency, when positive, models the remote designer-LLM call
	// latency inside each non-cached design run (the paper's deployment
	// calls a remote fine-tuned GPT; the in-process domain model is
	// instant). Used by loadgen's fleet mode to measure horizontal
	// scaling under the latency-bound regime real LLM serving lives in.
	ModelLatency time.Duration
	// StoreWriteFault, when non-nil, is injected into the persistent
	// store as a simulated disk failure (see cluster.StoreOptions
	// .WriteFault). Chaos-test hook; nil in production.
	StoreWriteFault func() error
	// SizingBackend is the default sizing backend for tuned design
	// requests that do not name one ("bo", "ga", "whitebox", "hybrid");
	// empty means backend.DefaultName. Requests can override it with the
	// "backend" field.
	SizingBackend string
}

// Server holds the service configuration.
type Server struct {
	mux *http.ServeMux
	// MaxTreeWidth bounds client-requested ToT width (resource guard).
	MaxTreeWidth int
	jobs         *jobs.Manager
	opts         Options
	// counters aggregates resilience events service-wide; each design
	// session's per-run counters are merged in when the session ends.
	counters *resilience.Counters
	// breaker guards the simulator/sizer backends across all sessions, so
	// a failure streak in one session short-circuits the next.
	breaker *resilience.Breaker

	// Telemetry: the metric registry behind GET /metrics, the trace ring
	// behind GET /traces, the per-route HTTP instruments, the design
	// outcome counters, and the optional access logger. See metrics.go.
	reg           *telemetry.Registry
	tracer        *telemetry.Tracer
	httpm         *telemetry.HTTPMetrics
	accessLog     *slog.Logger
	designs       *telemetry.CounterVec
	designSeconds *telemetry.Histogram

	// Sizing-backend instruments: which backend served each tuned design
	// (post-ladder, so a degraded run counts under its fallback) and how
	// many simulator evaluations the winning backend spent.
	sizingBackends *telemetry.CounterVec
	sizingEvals    *telemetry.Histogram

	// Groundedness-verifier verdicts over Verify-flagged design runs.
	groundChecks *telemetry.CounterVec

	// Batch-serving instruments: items per batch request, per-item
	// latency from batch submit to completion, and per-item outcomes.
	// See batch.go for the endpoints they observe.
	batchSize        *telemetry.Histogram
	batchItemSeconds *telemetry.HistogramVec
	batchItems       *telemetry.CounterVec

	// Distributed serving tier (see internal/cluster): the persistent
	// job store (nil without Options.DataDir), per-tenant admission
	// control and the priority queue in front of the pool (nil without
	// Options.TenantRate), and the draining flag /healthz flips to 503
	// on so a router pulls the node from rotation before its queue
	// closes.
	persist   *cluster.PersistentManager
	admission *cluster.Admission
	pqueue    *cluster.PQueue
	draining  atomic.Bool

	// Admission instruments: items admitted/shed per tenant and the
	// per-tenant wait-queue depth.
	admits      *telemetry.CounterVec
	sheds       *telemetry.CounterVec
	tenantQueue *telemetry.GaugeVec
}

// New builds the service with default options.
func New() *Server { return NewWithOptions(Options{}) }

// NewWithOptions builds the service with all routes registered. It
// panics when the persistent job store cannot be opened — use NewServer
// when Options.DataDir is set and the error should be handled.
func NewWithOptions(o Options) *Server {
	s, err := NewServer(o)
	if err != nil {
		panic(err)
	}
	return s
}

// NewServer builds the service with all routes registered, including
// the distributed-tier wiring (persistent store replay, admission
// control) when the corresponding options are set.
func NewServer(o Options) (*Server, error) {
	if o.MaxTreeWidth < 1 {
		o.MaxTreeWidth = 4
	}
	if o.RetryMax < 1 {
		o.RetryMax = 3
	}
	if o.BreakerThreshold < 1 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.MaxBatch < 1 {
		o.MaxBatch = 64
	}
	if o.SizingBackend != "" {
		if _, err := backend.Get(o.SizingBackend); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	counters := &resilience.Counters{}
	s := &Server{
		mux:          http.NewServeMux(),
		MaxTreeWidth: o.MaxTreeWidth,
		jobs: jobs.NewManager(jobs.Config{
			Workers: o.Workers, Queue: o.Queue,
			CacheSize: o.CacheSize, JobTimeout: o.JobTimeout,
			IDPrefix: o.NodeID,
		}),
		opts:     o,
		counters: counters,
		breaker: resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: o.BreakerThreshold, Cooldown: o.BreakerCooldown,
			Counters: counters,
		}),
	}
	s.admission = cluster.NewAdmission(cluster.AdmissionConfig{
		Rate: o.TenantRate, Burst: o.TenantBurst,
	})
	s.initTelemetry(o)
	if s.admission != nil {
		// The lease pool covers the workers plus the pending queue; the
		// wait queue in front of it is deliberately small — overload
		// should shed quickly, not build unbounded latency.
		workers, queue := o.Workers, o.Queue
		if workers < 1 {
			workers = runtime.GOMAXPROCS(0)
		}
		if queue < 1 {
			queue = 64
		}
		s.pqueue = cluster.NewPQueue(workers+queue, queue, func(tenant string, depth int) {
			s.tenantQueue.With(tenant).Set(float64(depth))
		})
	}
	if o.DataDir != "" {
		store, err := cluster.OpenStore(o.DataDir, cluster.StoreOptions{
			Sync: o.StoreSync, WriteFault: o.StoreWriteFault,
		})
		if err != nil {
			return nil, err
		}
		// Reserve the id space the journal already holds: a restarted
		// process otherwise restarts the manager's counter at 1 and a new
		// job can mint a logical id the journal has already seen, merging
		// two unrelated jobs' histories.
		s.jobs.ReserveIDs(maxJobSeq(store.IDs()))
		s.persist = cluster.NewPersistentManager(s.jobs, store)
		s.persist.Register("design", cluster.Executor{
			Run:    s.runPersistedDesign,
			Decode: decodePersistedDesign,
		})
		if _, err := s.persist.Replay(); err != nil {
			_ = store.Close()
			return nil, fmt.Errorf("server: journal replay: %w", err)
		}
		s.initStoreMetrics(store)
	}
	s.handle("GET /healthz", http.HandlerFunc(s.handleHealth))
	s.handle("GET /stats", http.HandlerFunc(s.handleStats))
	s.handle("GET /metrics", s.reg.Handler())
	s.handle("GET /traces", http.HandlerFunc(s.handleTraces))
	s.handle("GET /groups", http.HandlerFunc(s.handleGroups))
	s.handle("GET /architectures", http.HandlerFunc(s.handleArchitectures))
	s.handle("GET /topology/sample", http.HandlerFunc(s.handleTopologySample))
	s.handle("POST /design", http.HandlerFunc(s.handleDesign))
	s.handle("POST /design/batch", http.HandlerFunc(s.handleDesignBatch))
	s.handle("POST /simulate", http.HandlerFunc(s.handleSimulate))
	s.handle("POST /simulate/batch", http.HandlerFunc(s.handleSimulateBatch))
	s.handle("POST /jobs", http.HandlerFunc(s.handleJobSubmit))
	s.handle("GET /jobs", http.HandlerFunc(s.handleJobList))
	s.handle("GET /jobs/{id}", http.HandlerFunc(s.handleJobGet))
	s.handle("DELETE /jobs/{id}", http.HandlerFunc(s.handleJobCancel))
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// StartDraining marks the node not-ready: /healthz answers 503 from now
// on, so a router health probe pulls the node out of rotation before
// the job queue actually closes. Call it on SIGTERM, ahead of Shutdown.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Draining reports whether the node is shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown marks the node draining, drains the design worker pool, and
// closes the persistent job store (used for graceful exit).
func (s *Server) Shutdown(ctx context.Context) error {
	s.StartDraining()
	err := s.jobs.Shutdown(ctx)
	if s.persist != nil {
		if cerr := s.persist.Store().Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Persist exposes the persistent manager (nil without Options.DataDir).
// The chaos harness reaches through it to crash-close a node's journal
// before the pool drains — making a "kill" drop un-flushed terminal
// records the way a real process death would.
func (s *Server) Persist() *cluster.PersistentManager { return s.persist }

// Jobs exposes the job manager for fleet introspection in tests.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// maxJobSeq extracts the highest numeric suffix among journaled job ids
// ("<node>-j-<n>" or "j-<n>"); 0 when none parse.
func maxJobSeq(ids []string) int64 {
	var max int64
	for _, id := range ids {
		i := strings.LastIndex(id, "j-")
		if i < 0 {
			continue
		}
		n, err := strconv.ParseInt(id[i+2:], 10, 64)
		if err == nil && n > max {
			max = n
		}
	}
	return max
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decodeJSON hardens POST body handling: non-JSON Content-Type → 415,
// body over maxBodyBytes → 413, malformed JSON → 400. It reports whether
// decoding succeeded; on failure the error response is already written.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || (mt != "application/json" && !strings.HasSuffix(mt, "+json")) {
			writeErr(w, http.StatusUnsupportedMediaType,
				fmt.Errorf("unsupported Content-Type %q: use application/json", ct))
			return false
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return false
	}
	return true
}

// handleHealth is the readiness probe the router keys node membership
// on: 200 while serving, 503 the moment draining starts — before the
// job queue closes — so the router pulls the node from rotation instead
// of seeing mid-drain submit errors. The body always carries the node
// id so the router can map fleet-unique job ids back to their owner.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	out := map[string]any{
		"node":         s.opts.NodeID,
		"jobs":         s.jobs.Counts(),
		"queueDepth":   s.jobs.QueueDepth(),
		"cache":        s.jobs.CacheStats(),
		"coalesceHits": s.jobs.CoalesceHits(),
		"breaker":      s.breaker.State().String(),
		"resilience":   s.counters.Snapshot(),
	}
	if s.persist != nil {
		st := s.persist.Store().Stats()
		out["store"] = st
		if st.ReadOnly && status == http.StatusOK {
			// A poisoned store cannot durably accept work: report not-ready
			// so the router routes submissions to nodes that can.
			status = http.StatusServiceUnavailable
			state = "store-read-only"
		}
	}
	out["status"] = state
	writeJSON(w, status, out)
}

// handleStats surfaces the service-wide resilience counters, breaker
// state, queue saturation, admission control, journal replay totals,
// and the operating configuration — the observability face of the
// fault-tolerance and distributed layers.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"node":           s.opts.NodeID,
		"resilience":     s.counters.Snapshot(),
		"breaker":        s.breaker.State().String(),
		"jobs":           s.jobs.Counts(),
		"queueDepth":     s.jobs.QueueDepth(),
		"queue_depth":    s.jobs.QueueDepth(),
		"queue_capacity": s.jobs.QueueCapacity(),
		"cache":          s.jobs.CacheStats(),
		"coalesceHits":   s.jobs.CoalesceHits(),
		"config": map[string]any{
			"retryMax":         s.opts.RetryMax,
			"breakerThreshold": s.opts.BreakerThreshold,
			"toolTimeout":      s.opts.ToolTimeout.String(),
			"faultRate":        s.opts.FaultRate,
			"maxBatch":         s.opts.MaxBatch,
			"tenantRate":       s.opts.TenantRate,
		},
	}
	if s.admission != nil {
		admitted, shed := s.admission.Totals()
		out["admission"] = map[string]any{
			"admitted": admitted,
			"shed":     shed,
			"tenants":  s.admission.Snapshot(),
			"waiting":  s.pqueue.Waiting(),
		}
	}
	if s.persist != nil {
		warmed, resubmitted := s.persist.ReplayCounts()
		out["replay"] = map[string]any{
			"resultsWarmed": warmed,
			"resubmitted":   resubmitted,
			"journalJobs":   s.persist.Store().Len(),
		}
		// Journal integrity: corrupt (quarantined) record count, legacy
		// frames, torn tail, and the read-only poison flag.
		out["store"] = s.persist.Store().Stats()
	}
	writeJSON(w, http.StatusOK, out)
}

// tenantOf resolves the admission tenant of a request: the X-Tenant
// header, or "default".
func tenantOf(r *http.Request) string {
	if t := strings.TrimSpace(r.Header.Get("X-Tenant")); t != "" {
		return t
	}
	return "default"
}

// priorityOf resolves the X-Priority header, clamped to [0,9] (higher
// drains first under overload); absent or malformed means 0.
func priorityOf(r *http.Request) int {
	v, err := strconv.Atoi(strings.TrimSpace(r.Header.Get("X-Priority")))
	if err != nil || v < 0 {
		return 0
	}
	if v > 9 {
		return 9
	}
	return v
}

// retryAfterSeconds derives the Retry-After hint for shed and
// over-capacity responses from queue saturation: the deeper the pending
// queue relative to the worker pool, the longer a retry should wait.
// Clamped to [1,30] seconds.
func (s *Server) retryAfterSeconds() int {
	workers := s.jobs.Workers()
	if workers < 1 {
		workers = 1
	}
	secs := 1 + s.jobs.QueueDepth()/workers
	if secs > 30 {
		secs = 30
	}
	return secs
}

// writeShed writes a load-shedding response: status (429 or 503) plus a
// Retry-After header. A non-zero wait (from the tenant's token bucket)
// overrides the queue-derived hint.
func (s *Server) writeShed(w http.ResponseWriter, status int, wait time.Duration, err error) {
	secs := s.retryAfterSeconds()
	if wait > 0 {
		secs = int(math.Ceil(wait.Seconds()))
		if secs < 1 {
			secs = 1
		}
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeErr(w, status, err)
}

// admit runs the request through per-tenant admission control and the
// priority queue, charging items tokens. On success the returned
// release must be called when the admitted work reaches a terminal
// state; on shed the 429 response (with Retry-After) is already
// written. With admission disabled it is a no-op pass.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, items int) (release func(), ok bool) {
	if s.admission == nil {
		return func() {}, true
	}
	tenant := tenantOf(r)
	d := s.admission.AdmitN(tenant, items)
	if !d.OK {
		s.sheds.With(tenant, "rate").Add(float64(items))
		s.writeShed(w, http.StatusTooManyRequests, d.RetryAfter,
			fmt.Errorf("tenant %q over rate limit", tenant))
		return nil, false
	}
	release, err := s.pqueue.Acquire(r.Context(), tenant, priorityOf(r))
	switch {
	case errors.Is(err, cluster.ErrShed):
		s.sheds.With(tenant, "queue").Add(float64(items))
		s.writeShed(w, http.StatusTooManyRequests, 0, err)
		return nil, false
	case err != nil: // client gave up while waiting
		writeErr(w, http.StatusServiceUnavailable, err)
		return nil, false
	}
	s.admits.With(tenant).Add(float64(items))
	return release, true
}

// groupJSON is the wire form of a spec group.
type groupJSON struct {
	Name      string  `json:"name"`
	MinGainDB float64 `json:"minGainDB"`
	MinGBWHz  float64 `json:"minGBWHz"`
	MinPMDeg  float64 `json:"minPMDeg"`
	MaxPowerW float64 `json:"maxPowerW"`
	CLF       float64 `json:"clF"`
	Prompt    string  `json:"prompt"`
}

func (s *Server) handleGroups(w http.ResponseWriter, r *http.Request) {
	out := []groupJSON{}
	for _, g := range spec.Groups() {
		out = append(out, groupJSON{
			Name: g.Name, MinGainDB: g.MinGainDB, MinGBWHz: g.MinGBW,
			MinPMDeg: g.MinPM, MaxPowerW: g.MaxPower, CLF: g.CL,
			Prompt: g.Prompt(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleArchitectures(w http.ResponseWriter, r *http.Request) {
	type arch struct {
		Name      string  `json:"name"`
		MaxCLF    float64 `json:"maxCLF"`
		MaxGBWHz  float64 `json:"maxGBWHz"`
		Rationale string  `json:"rationale"`
	}
	out := []arch{}
	for _, p := range llm.DomainProfiles() {
		out = append(out, arch{Name: p.Arch, MaxCLF: p.MaxCL, MaxGBWHz: p.MaxGBW, Rationale: p.Rationale})
	}
	writeJSON(w, http.StatusOK, out)
}

// DesignRequest is the POST /design and POST /jobs body (and one item
// of a POST /design/batch).
type DesignRequest struct {
	Group  string `json:"group,omitempty"`
	Prompt string `json:"prompt,omitempty"`
	// Spec is a full custom specification in the GET /groups wire form,
	// strictly decoded and range-validated by spec.ParseJSON. It takes
	// precedence over Group and Prompt.
	Spec        json.RawMessage `json:"spec,omitempty"`
	Seed        int64           `json:"seed,omitempty"`
	Temperature float64         `json:"temperature,omitempty"`
	TreeWidth   int             `json:"treeWidth,omitempty"`
	Tune        bool            `json:"tune,omitempty"`
	Transcript  bool            `json:"transcript,omitempty"`
	// Verify runs the groundedness verifier over the session transcript
	// against the produced netlist and returns its report — the serving-
	// tier hook of the generative benchmark harness.
	Verify bool `json:"verify,omitempty"`
	// Backend selects the sizing backend for tuned requests ("bo", "ga",
	// "whitebox", "hybrid"). Empty falls back to the server's configured
	// default. Ignored unless Tune is set.
	Backend string `json:"backend,omitempty"`
}

// DesignResponse is the POST /design reply (and the result payload of a
// finished design job).
type DesignResponse struct {
	Success    bool              `json:"success"`
	Arch       string            `json:"arch,omitempty"`
	FailReason string            `json:"failReason,omitempty"`
	Metrics    *metricsJSON      `json:"metrics,omitempty"`
	FoM        float64           `json:"fom,omitempty"`
	Netlist    string            `json:"netlist,omitempty"`
	Transistor string            `json:"transistor,omitempty"`
	Transcript string            `json:"transcript,omitempty"`
	Session    map[string]int    `json:"session"`
	ModeledRun *modeledDurations `json:"modeledRuntime,omitempty"`
	// Grounded is the groundedness-verifier report (requests with Verify
	// set): every device/node/parameter the transcript cites, cross-
	// referenced against the produced netlist.
	Grounded *agents.GroundReport `json:"grounded,omitempty"`
	// Cached reports that the result came from the design cache rather
	// than a fresh agent session.
	Cached bool `json:"cached,omitempty"`
	// Degraded reports that the session fell back to the deterministic
	// retrieval model after repeated primary-designer failures.
	Degraded bool `json:"degraded,omitempty"`
	// Resilience carries the session's fault-tolerance counters when any
	// resilience event fired.
	Resilience *resilience.Snapshot `json:"resilience,omitempty"`
}

type metricsJSON struct {
	GainDB float64 `json:"gainDB"`
	GBWHz  float64 `json:"gbwHz"`
	PMDeg  float64 `json:"pmDeg"`
	PowerW float64 `json:"powerW"`
	Stable bool    `json:"stable"`
	F3dBHz float64 `json:"f3dBHz"`
	// GMdB is null when the phase never reaches −180° (infinite margin):
	// JSON has no representation for +Inf.
	GMdB    *float64 `json:"gmDB"`
	NumPole int      `json:"numPoles"`
	// PoleZeroErr is set when pole/zero extraction failed: stable=false
	// then means "stability unknown", not "verified unstable".
	PoleZeroErr string `json:"poleZeroErr,omitempty"`
}

type modeledDurations struct {
	Artisan string `json:"artisan"`
}

// parseDesignRequest validates a decoded request and resolves its spec.
// A non-nil error carries the HTTP status to write.
func (s *Server) parseDesignRequest(req *DesignRequest) (spec.Spec, error) {
	var sp spec.Spec
	var err error
	switch {
	case len(req.Spec) > 0:
		sp, err = spec.ParseJSON(req.Spec)
	case req.Group != "":
		sp, err = spec.Group(req.Group)
	case req.Prompt != "":
		sp, err = core.ParsePrompt(req.Prompt)
	default:
		err = fmt.Errorf("provide spec, group, or prompt")
	}
	if err != nil {
		return sp, err
	}
	if req.TreeWidth < 1 {
		req.TreeWidth = 1
	}
	if req.TreeWidth > s.MaxTreeWidth {
		return sp, fmt.Errorf("treeWidth %d exceeds limit %d", req.TreeWidth, s.MaxTreeWidth)
	}
	if req.Temperature < 0 || req.Temperature > 1 {
		return sp, fmt.Errorf("temperature %g out of [0,1]", req.Temperature)
	}
	// Canonicalize the sizing backend so the cache key and the session see
	// the same resolved name regardless of which default filled it in.
	if req.Backend == "" {
		req.Backend = s.opts.SizingBackend
	}
	if req.Backend == "" {
		req.Backend = backend.DefaultName
	}
	if _, err := backend.Get(req.Backend); err != nil {
		return sp, err
	}
	return sp, nil
}

// designKey canonicalizes (spec, options, seed) for the result cache.
// The spec fields — not the raw group/prompt strings — form the key, so
// a group request and the equivalent prompt request share an entry.
func designKey(sp spec.Spec, req DesignRequest) string {
	return fmt.Sprintf("design|gain=%g|gbw=%g|pm=%g|pow=%g|cl=%g|rl=%g|vdd=%g|seed=%d|temp=%g|width=%d|tune=%t|chat=%t|verify=%t|backend=%s",
		sp.MinGainDB, sp.MinGBW, sp.MinPM, sp.MaxPower, sp.CL, sp.RL, sp.VDD,
		req.Seed, req.Temperature, req.TreeWidth, req.Tune, req.Transcript, req.Verify, req.Backend)
}

// designFunc builds the pool job that runs the full workflow with the
// service's resilience ladder attached. Each run is traced into the
// server's ring buffer under a "server.design" root span (carrying the
// originating request id) and counted into artisan_designs_total and the
// design-duration histogram.
func (s *Server) designFunc(sp spec.Spec, req DesignRequest, requestID string) jobs.Func {
	group := req.Group
	if group == "" {
		group = "custom"
	}
	return func(ctx context.Context) (any, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s.opts.ModelLatency > 0 {
			// Model the remote designer-LLM round trip (see Options).
			t := time.NewTimer(s.opts.ModelLatency)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
		}
		// The pool context is not the request context, so the tracer and
		// correlation id are attached here, at run time.
		ctx = telemetry.WithTracer(ctx, s.tracer)
		var span *telemetry.Span
		ctx, span = telemetry.StartSpan(ctx, "server.design")
		span.SetAttr("group", group)
		if requestID != "" {
			span.SetAttr("requestID", requestID)
		}
		start := time.Now()
		outcome := "error"
		defer func() {
			s.designSeconds.ObserveSince(start)
			s.designs.With("artisan", group, outcome).Inc()
			span.SetAttr("outcome", outcome)
			span.End()
		}()
		a := core.NewWithModel(llm.NewDomainModel(req.Seed, req.Temperature))
		a.Opts.TreeWidth = req.TreeWidth
		a.Opts.Tune = req.Tune
		a.Opts.SizingBackend = req.Backend
		sessionCounters := &resilience.Counters{}
		a.Res = &agents.Resilience{
			Retry: resilience.RetryPolicy{
				MaxAttempts: s.opts.RetryMax,
				BaseDelay:   10 * time.Millisecond,
				MaxDelay:    200 * time.Millisecond,
				PerAttempt:  s.opts.ToolTimeout,
				Seed:        req.Seed,
			},
			Breaker:  s.breaker,
			Fallback: llm.NewDomainModel(req.Seed, 0),
			Counters: sessionCounters,
		}
		if s.opts.FaultRate > 0 {
			a.Faults = resilience.NewInjector(resilience.InjectorConfig{
				Seed: req.Seed, ErrorRate: s.opts.FaultRate,
				Counters: sessionCounters})
		}
		out, err := a.Design(ctx, sp)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err // cancelled mid-run: discard the result
		}
		s.counters.Merge(out.Resilience)
		if out.Success {
			outcome = "success"
		} else {
			outcome = "fail"
		}
		if out.SizingBackend != "" {
			s.sizingBackends.With(out.SizingBackend, outcome).Inc()
			s.sizingEvals.Observe(float64(out.SizingEvals))
		}
		resp := &DesignResponse{
			Success:    out.Success,
			Arch:       out.Arch,
			FailReason: out.FailReason,
			Degraded:   out.Degraded,
			Session:    map[string]int{"qaSteps": out.QACount, "simulations": out.SimCount},
		}
		if out.Resilience != (resilience.Snapshot{}) {
			snap := out.Resilience
			resp.Resilience = &snap
		}
		if out.Success {
			resp.Metrics = toMetricsJSON(out.Report)
			resp.FoM = sp.FoMOf(out.Report)
			resp.Netlist = out.Netlist.String()
			if out.Transistor != nil {
				resp.Transistor = out.Transistor.String()
			}
			cm := experiment.DefaultCostModel()
			resp.ModeledRun = &modeledDurations{
				Artisan: cm.ArtisanTime(out.SimCount, out.QACount, true).Round(time.Second).String(),
			}
		}
		if req.Transcript {
			resp.Transcript = out.Transcript.Chat()
		}
		if req.Verify && out.Netlist != nil && out.Transcript != nil {
			gr := agents.VerifyGrounding(out.Transcript, out.Netlist)
			resp.Grounded = gr
			verdict := "pass"
			if !gr.Pass() {
				verdict = "fail"
			}
			s.groundChecks.With(verdict).Inc()
		}
		return resp, nil
	}
}

// persistedDesign is the journaled payload of one design job — enough
// to re-derive the jobs.Func after a restart.
type persistedDesign struct {
	Req       DesignRequest `json:"req"`
	RequestID string        `json:"requestID,omitempty"`
	// DeadlineUnixMs is the submitting client's end-to-end budget as a
	// wall-clock instant (0 = none). Journaled so a replay after a crash
	// still honours it: a job whose client gave up mid-outage is
	// cancelled on resume, not re-executed into the void.
	DeadlineUnixMs int64 `json:"deadlineUnixMs,omitempty"`
}

// runPersistedDesign is the "design" executor behind the persistent job
// store: it rebuilds the design closure from a journaled payload and
// runs it. Fresh submissions go through the same path, so live and
// replayed runs are byte-identical.
func (s *Server) runPersistedDesign(ctx context.Context, payload json.RawMessage) (any, error) {
	var pd persistedDesign
	if err := json.Unmarshal(payload, &pd); err != nil {
		return nil, fmt.Errorf("server: corrupt persisted design: %w", err)
	}
	if pd.DeadlineUnixMs > 0 && time.Now().UnixMilli() >= pd.DeadlineUnixMs {
		// The budget expired (typically across a crash/replay gap): the
		// wrapped context.Canceled classifies the job as cancelled, the
		// same terminal state an expired queued job gets.
		return nil, fmt.Errorf("server: deadline budget exhausted before replayed run: %w", context.Canceled)
	}
	sp, err := s.parseDesignRequest(&pd.Req)
	if err != nil {
		return nil, fmt.Errorf("server: persisted design no longer valid: %w", err)
	}
	return s.designFunc(sp, pd.Req, pd.RequestID)(ctx)
}

// decodePersistedDesign rehydrates a journaled result for cache
// warming.
func decodePersistedDesign(raw json.RawMessage) (any, error) {
	var resp DesignResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// deadlineOf resolves a request's X-Deadline-Ms end-to-end budget into
// a wall-clock deadline; zero when absent or malformed (the header is
// advisory — garbage must not 400 a proxied request).
func deadlineOf(r *http.Request) time.Time {
	ms, err := strconv.ParseInt(strings.TrimSpace(r.Header.Get(cluster.DeadlineHeader)), 10, 64)
	if err != nil || ms <= 0 {
		return time.Time{}
	}
	return time.Now().Add(time.Duration(ms) * time.Millisecond)
}

// submitDesignJob enqueues one parsed design request, through the
// persistent store when enabled.
func (s *Server) submitDesignJob(sp spec.Spec, req DesignRequest, requestID string, coalesce bool, deadline time.Time) (*jobs.Job, bool, error) {
	opts := jobs.SubmitOpts{
		Key: designKey(sp, req), RequestID: requestID,
		Coalesce: coalesce, Deadline: deadline,
	}
	if s.persist != nil {
		pd := persistedDesign{Req: req, RequestID: requestID}
		if !deadline.IsZero() {
			pd.DeadlineUnixMs = deadline.UnixMilli()
		}
		payload, err := json.Marshal(pd)
		if err != nil {
			return nil, false, err
		}
		return s.persist.Submit("design", payload, opts)
	}
	return s.jobs.SubmitCoalesced(s.designFunc(sp, req, requestID), opts)
}

// submitDesign validates, canonicalizes, admits, and enqueues a design
// request.
func (s *Server) submitDesign(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	var req DesignRequest
	if !decodeJSON(w, r, &req) {
		return nil, false
	}
	sp, err := s.parseDesignRequest(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, false
	}
	release, ok := s.admit(w, r, 1)
	if !ok {
		return nil, false
	}
	requestID := telemetry.RequestIDOf(r.Context())
	j, _, err := s.submitDesignJob(sp, req, requestID, false, deadlineOf(r))
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		release()
		s.writeShed(w, http.StatusServiceUnavailable, 0, err)
		return nil, false
	case errors.Is(err, jobs.ErrShutdown):
		release()
		writeErr(w, http.StatusServiceUnavailable, err)
		return nil, false
	case errors.Is(err, cluster.ErrStoreReadOnly):
		// The journal cannot durably record the submission; refuse rather
		// than accept work that a crash would silently lose. /healthz is
		// already reporting the poisoned store, so the router will stop
		// sending submissions here.
		release()
		writeErr(w, http.StatusServiceUnavailable, err)
		return nil, false
	case err != nil:
		release()
		writeErr(w, http.StatusInternalServerError, err)
		return nil, false
	}
	// The admission lease spans the job's whole life — queued, running,
	// terminal — regardless of whether the caller waits (sync /design) or
	// polls (async /jobs).
	go func() {
		defer release()
		_, werr := j.Wait(context.Background())
		_ = werr // the job's own state records the outcome
	}()
	return j, true
}

// handleDesign keeps the synchronous API: the request still runs on the
// shared pool (bounding server-wide concurrency and hitting the cache),
// but the handler waits for completion before replying.
func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	j, ok := s.submitDesign(w, r)
	if !ok {
		return
	}
	res, err := j.Wait(r.Context())
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp := res.(*DesignResponse)
	if j.Snapshot().Cached {
		cp := *resp
		cp.Cached = true
		resp = &cp
	}
	writeJSON(w, http.StatusOK, resp)
}

// jobJSON is the wire form of a job snapshot.
type jobJSON struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	Cached   bool   `json:"cached,omitempty"`
	Error    string `json:"error,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	LastErr  string `json:"lastError,omitempty"`
	// RequestID is the X-Request-ID of the submitting request, so a
	// queued job can be correlated with its access-log line and trace.
	RequestID string `json:"requestID,omitempty"`
	Created   string `json:"created"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`
	// Deadline is the job's end-to-end budget (X-Deadline-Ms at submit),
	// surfaced so an operator can see which queued work is already dead.
	Deadline string `json:"deadline,omitempty"`
	Result   any    `json:"result,omitempty"`
}

func toJobJSON(s jobs.Snapshot, includeResult bool) jobJSON {
	out := jobJSON{
		ID: s.ID, Status: string(s.Status), Cached: s.Cached, Error: s.Err,
		Attempts: s.Attempts, LastErr: s.LastErr, RequestID: s.RequestID,
		Created: s.Created.UTC().Format(time.RFC3339Nano),
	}
	if !s.Deadline.IsZero() {
		out.Deadline = s.Deadline.UTC().Format(time.RFC3339Nano)
	}
	if !s.Started.IsZero() {
		out.Started = s.Started.UTC().Format(time.RFC3339Nano)
	}
	if !s.Finished.IsZero() {
		out.Finished = s.Finished.UTC().Format(time.RFC3339Nano)
	}
	if includeResult && s.Status == jobs.StatusDone {
		out.Result = s.Result
	}
	return out
}

// handleJobSubmit enqueues a design asynchronously: 202 + job id.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	j, ok := s.submitDesign(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusAccepted, toJobJSON(j.Snapshot(), false))
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, jobs.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, toJobJSON(j.Snapshot(), true))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	snaps := s.jobs.List()
	list := []jobJSON{}
	for _, sn := range snaps {
		list = append(list, toJobJSON(sn, false))
	}
	counts := map[string]int{}
	for _, sn := range snaps {
		counts[string(sn.Status)]++
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":   list,
		"counts": counts,
		"cache":  s.jobs.CacheStats(),
	})
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch err := s.jobs.Cancel(id); {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "cancelling"})
	case errors.Is(err, jobs.ErrNotFound):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, jobs.ErrFinished):
		writeErr(w, http.StatusConflict, err)
	default:
		writeErr(w, http.StatusInternalServerError, err)
	}
}

func toMetricsJSON(rep measure.Report) *metricsJSON {
	m := &metricsJSON{
		GainDB: rep.GainDB, GBWHz: rep.GBW, PMDeg: rep.PM, PowerW: rep.Power,
		Stable: rep.Stable, F3dBHz: rep.F3dB, NumPole: rep.NumPoles,
		PoleZeroErr: rep.PoleZeroErr,
	}
	if !math.IsInf(rep.GM, 0) && !math.IsNaN(rep.GM) {
		gm := rep.GM
		m.GMdB = &gm
	}
	return m
}

// SimulateRequest is the POST /simulate body.
type SimulateRequest struct {
	Netlist string `json:"netlist"`
	Out     string `json:"out,omitempty"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Out == "" {
		req.Out = "out"
	}
	nl, err := netlist.Parse(req.Netlist)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rep, err := measure.Analyze(nl, req.Out)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, toMetricsJSON(rep))
}
