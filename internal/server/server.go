// Package server exposes the Artisan framework as a JSON HTTP service —
// the "released for public access" form of the paper's abstract. The API
// is deliberately small: design from a spec group or a natural-language
// prompt, simulate a netlist, and introspect the knowledge base.
package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	"artisan/internal/core"
	"artisan/internal/experiment"
	"artisan/internal/llm"
	"artisan/internal/measure"
	"artisan/internal/netlist"
	"artisan/internal/spec"
)

// Server holds the service configuration.
type Server struct {
	mux *http.ServeMux
	// MaxTreeWidth bounds client-requested ToT width (resource guard).
	MaxTreeWidth int
}

// New builds the service with all routes registered.
func New() *Server {
	s := &Server{mux: http.NewServeMux(), MaxTreeWidth: 4}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /groups", s.handleGroups)
	s.mux.HandleFunc("GET /architectures", s.handleArchitectures)
	s.mux.HandleFunc("POST /design", s.handleDesign)
	s.mux.HandleFunc("POST /simulate", s.handleSimulate)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// groupJSON is the wire form of a spec group.
type groupJSON struct {
	Name      string  `json:"name"`
	MinGainDB float64 `json:"minGainDB"`
	MinGBWHz  float64 `json:"minGBWHz"`
	MinPMDeg  float64 `json:"minPMDeg"`
	MaxPowerW float64 `json:"maxPowerW"`
	CLF       float64 `json:"clF"`
	Prompt    string  `json:"prompt"`
}

func (s *Server) handleGroups(w http.ResponseWriter, r *http.Request) {
	var out []groupJSON
	for _, g := range spec.Groups() {
		out = append(out, groupJSON{
			Name: g.Name, MinGainDB: g.MinGainDB, MinGBWHz: g.MinGBW,
			MinPMDeg: g.MinPM, MaxPowerW: g.MaxPower, CLF: g.CL,
			Prompt: g.Prompt(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleArchitectures(w http.ResponseWriter, r *http.Request) {
	type arch struct {
		Name      string  `json:"name"`
		MaxCLF    float64 `json:"maxCLF"`
		MaxGBWHz  float64 `json:"maxGBWHz"`
		Rationale string  `json:"rationale"`
	}
	var out []arch
	for _, p := range llm.DomainProfiles() {
		out = append(out, arch{Name: p.Arch, MaxCLF: p.MaxCL, MaxGBWHz: p.MaxGBW, Rationale: p.Rationale})
	}
	writeJSON(w, http.StatusOK, out)
}

// DesignRequest is the POST /design body.
type DesignRequest struct {
	Group       string  `json:"group,omitempty"`
	Prompt      string  `json:"prompt,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	Temperature float64 `json:"temperature,omitempty"`
	TreeWidth   int     `json:"treeWidth,omitempty"`
	Tune        bool    `json:"tune,omitempty"`
	Transcript  bool    `json:"transcript,omitempty"`
}

// DesignResponse is the POST /design reply.
type DesignResponse struct {
	Success    bool              `json:"success"`
	Arch       string            `json:"arch,omitempty"`
	FailReason string            `json:"failReason,omitempty"`
	Metrics    *metricsJSON      `json:"metrics,omitempty"`
	FoM        float64           `json:"fom,omitempty"`
	Netlist    string            `json:"netlist,omitempty"`
	Transistor string            `json:"transistor,omitempty"`
	Transcript string            `json:"transcript,omitempty"`
	Session    map[string]int    `json:"session"`
	ModeledRun *modeledDurations `json:"modeledRuntime,omitempty"`
}

type metricsJSON struct {
	GainDB float64 `json:"gainDB"`
	GBWHz  float64 `json:"gbwHz"`
	PMDeg  float64 `json:"pmDeg"`
	PowerW float64 `json:"powerW"`
	Stable bool    `json:"stable"`
	F3dBHz float64 `json:"f3dBHz"`
	// GMdB is null when the phase never reaches −180° (infinite margin):
	// JSON has no representation for +Inf.
	GMdB    *float64 `json:"gmDB"`
	NumPole int      `json:"numPoles"`
}

type modeledDurations struct {
	Artisan string `json:"artisan"`
}

func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	var req DesignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return
	}
	var sp spec.Spec
	var err error
	switch {
	case req.Group != "":
		sp, err = spec.Group(req.Group)
	case req.Prompt != "":
		sp, err = core.ParsePrompt(req.Prompt)
	default:
		err = fmt.Errorf("provide group or prompt")
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.TreeWidth < 1 {
		req.TreeWidth = 1
	}
	if req.TreeWidth > s.MaxTreeWidth {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("treeWidth %d exceeds limit %d", req.TreeWidth, s.MaxTreeWidth))
		return
	}
	if req.Temperature < 0 || req.Temperature > 1 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("temperature %g out of [0,1]", req.Temperature))
		return
	}

	a := core.NewWithModel(llm.NewDomainModel(req.Seed, req.Temperature))
	a.Opts.TreeWidth = req.TreeWidth
	a.Opts.Tune = req.Tune
	out, err := a.Design(sp)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}

	resp := DesignResponse{
		Success:    out.Success,
		Arch:       out.Arch,
		FailReason: out.FailReason,
		Session:    map[string]int{"qaSteps": out.QACount, "simulations": out.SimCount},
	}
	if out.Success {
		resp.Metrics = toMetricsJSON(out.Report)
		resp.FoM = sp.FoMOf(out.Report)
		resp.Netlist = out.Netlist.String()
		if out.Transistor != nil {
			resp.Transistor = out.Transistor.String()
		}
		cm := experiment.DefaultCostModel()
		resp.ModeledRun = &modeledDurations{
			Artisan: cm.ArtisanTime(out.SimCount, out.QACount, true).Round(time.Second).String(),
		}
	}
	if req.Transcript {
		resp.Transcript = out.Transcript.Chat()
	}
	writeJSON(w, http.StatusOK, resp)
}

func toMetricsJSON(rep measure.Report) *metricsJSON {
	m := &metricsJSON{
		GainDB: rep.GainDB, GBWHz: rep.GBW, PMDeg: rep.PM, PowerW: rep.Power,
		Stable: rep.Stable, F3dBHz: rep.F3dB, NumPole: rep.NumPoles,
	}
	if !math.IsInf(rep.GM, 0) && !math.IsNaN(rep.GM) {
		gm := rep.GM
		m.GMdB = &gm
	}
	return m
}

// SimulateRequest is the POST /simulate body.
type SimulateRequest struct {
	Netlist string `json:"netlist"`
	Out     string `json:"out,omitempty"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return
	}
	if req.Out == "" {
		req.Out = "out"
	}
	nl, err := netlist.Parse(req.Netlist)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rep, err := measure.Analyze(nl, req.Out)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, toMetricsJSON(rep))
}
