// Package design encodes the analytic opamp design procedures — the
// bottom-level Chain-of-Thoughts design flow of the paper (§3.3.2, Fig. 4).
// Each architecture's procedure is a sequence of question/answer steps
// whose numeric work is expressed as calculator formulas (the tool the
// Artisan-LLM invokes), so executing a procedure yields both a sized
// topology and a human-readable derivation — the interpretability the
// paper contrasts against black-box optimizers.
//
// The empirical choices a human expert would make ("Cm1 and Cm2 are both
// in the pF level, take Cm1 = 4 pF") are factored into Knobs, which the
// LLM layer samples at temperature; the recipes below were calibrated
// against the in-repo MNA simulator so that default knobs meet the
// paper's spec groups.
package design

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"artisan/internal/spec"
	"artisan/internal/topology"
	"artisan/internal/units"
)

// Step is one QA exchange of the design flow.
type Step struct {
	Index    int
	Title    string
	Question string // what Artisan-Prompter asks
	Answer   string // the narrative part of Artisan-LLM's answer
	Formulas []string
	Results  []string // formatted calculator outputs, one per formula
}

// Result is a completed design: the sized topology plus the derivation.
type Result struct {
	Arch   string
	Spec   spec.Spec
	Knobs  Knobs
	Topo   *topology.Topology
	Steps  []Step
	Params map[string]float64 // final calculator environment snapshot
}

// Transcript renders the full derivation as a chat-style log.
func (r *Result) Transcript() string {
	var b strings.Builder
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "Q%d: %s\n", s.Index, s.Question)
		fmt.Fprintf(&b, "A%d: %s\n", s.Index, s.Answer)
		for _, res := range s.Results {
			fmt.Fprintf(&b, "    [calculator] %s\n", res)
		}
	}
	return b.String()
}

// Param returns a named quantity from the final design environment.
func (r *Result) Param(name string) (float64, bool) {
	v, ok := r.Params[name]
	return v, ok
}

// Knobs are the empirical design choices. Every knob is a positive scalar
// so the LLM layer can jitter them log-normally.
type Knobs map[string]float64

// Clone copies the knob set.
func (k Knobs) Clone() Knobs {
	c := make(Knobs, len(k))
	for key, v := range k {
		c[key] = v
	}
	return c
}

// String renders knobs deterministically (sorted keys).
func (k Knobs) String() string {
	keys := make([]string, 0, len(k))
	for key := range k {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, key := range keys {
		parts[i] = fmt.Sprintf("%s=%s", key, units.Format(k[key]))
	}
	return strings.Join(parts, " ")
}

// Architectures lists the architectures with design procedures, in the
// preference order of the knowledge base.
func Architectures() []string {
	return []string{"NMC", "NMCNR", "NMCF", "MNMC", "NGCC", "DFCFC", "TCFC", "AZC", "SMC", "SMCNR"}
}

// DefaultKnobs returns the calibrated expert choices for an architecture
// under a spec.
func DefaultKnobs(arch string, s spec.Spec) (Knobs, error) {
	switch arch {
	case "NMC", "NMCNR":
		k := Knobs{"GBWMargin": 1.45, "Cm1": 4e-12, "Cm2Ratio": 0.75}
		if s.MaxPower < 100e-6 {
			// Low-power allocation: smaller compensation caps cut gm1/gm2.
			k["Cm1"] = 2e-12
		}
		if arch == "NMCNR" {
			k["RzFactor"] = 1.0 // Rz = RzFactor/gm3
		}
		return k, nil
	case "NMCF":
		return Knobs{"GBWMargin": 1.3, "Cm1": 1e-12, "Cm2Ratio": 0.4,
			"Gm2Ratio": 5.0, "Gm3Factor": 0.66, "GmfRatio": 0.27}, nil
	case "MNMC":
		return Knobs{"GBWMargin": 1.45, "Cm1": 4e-12, "Cm2Ratio": 0.26,
			"Gm2Boost": 1.36, "Gm3Boost": 1.16, "GmfRatio": 1.0}, nil
	case "NGCC":
		return Knobs{"GBWMargin": 1.45, "Cm1": 4e-12, "Cm2Ratio": 0.75}, nil
	case "DFCFC":
		if s.CL >= 100e-12 {
			// Huge-load regime (the architecture's home turf, G-5).
			return Knobs{"GBWMargin": 2.5, "Cm1": 3e-12, "Gm2Ratio": 0.8,
				"Gm3Factor": 0.03, "Gm4Ratio": 0.1, "Cm3Ratio": 1.0, "GmfRatio": 0.15}, nil
		}
		// Moderate loads need a conventionally strong output stage.
		return Knobs{"GBWMargin": 2.0, "Cm1": 3e-12, "Gm2Ratio": 0.65,
			"Gm3Factor": 0.5, "Gm4Ratio": 0.2, "Cm3Ratio": 1.0, "GmfRatio": 0.3}, nil
	case "TCFC":
		return Knobs{"GBWMargin": 1.95, "Cmt": 0.26e-12, "GmtRatio": 0.58,
			"Gm2Ratio": 2.1, "Gm3Factor": 16.2, "Cm2": 0.33e-12}, nil
	case "AZC":
		return Knobs{"GBWMargin": 1.45, "Cm1": 4e-12, "Gm2Ratio": 1.14,
			"Gm3Factor": 1.0, "GmaRatio": 0.12, "Cm2": 0.48e-12}, nil
	case "SMC", "SMCNR":
		k := Knobs{"GBWMargin": 1.3, "Cc": 1e-12, "Gm2Factor": 3.0}
		if arch == "SMCNR" {
			k["RzFactor"] = 1.0 // Rz = RzFactor/gm2
		}
		return k, nil
	}
	return nil, fmt.Errorf("design: unknown architecture %q", arch)
}

// SampleKnobs draws the empirical choices at a temperature: each knob is
// perturbed log-normally with σ = temperature, mimicking the spread of the
// Artisan-LLM's sampled answers across repeated design sessions.
func SampleKnobs(arch string, s spec.Spec, rng *rand.Rand, temperature float64) (Knobs, error) {
	k, err := DefaultKnobs(arch, s)
	if err != nil {
		return nil, err
	}
	// Iterate in sorted order: map order is randomized per run, and each
	// knob consumes one RNG draw, so unordered iteration would break
	// seeded reproducibility.
	keys := make([]string, 0, len(k))
	for key := range k {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		k[key] *= lognorm(rng, temperature)
	}
	return k, nil
}

func lognorm(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	v := rng.NormFloat64() * sigma
	if v > 1.5 {
		v = 1.5
	}
	if v < -1.5 {
		v = -1.5
	}
	return math.Exp(v)
}

// Design runs the architecture's procedure and returns the sized topology
// plus the step-by-step derivation.
func Design(arch string, s spec.Spec, k Knobs) (*Result, error) {
	if k == nil {
		var err error
		k, err = DefaultKnobs(arch, s)
		if err != nil {
			return nil, err
		}
	}
	b := newBuilder(arch, s, k)
	var err error
	switch arch {
	case "NMC":
		err = b.designNMC(false)
	case "NMCNR":
		err = b.designNMC(true)
	case "NMCF":
		err = b.designNMCF()
	case "MNMC":
		err = b.designMNMC()
	case "NGCC":
		err = b.designNGCC()
	case "DFCFC":
		err = b.designDFCFC()
	case "TCFC":
		err = b.designTCFC()
	case "AZC":
		err = b.designAZC()
	case "SMC":
		err = b.designSMC(false)
	case "SMCNR":
		err = b.designSMC(true)
	default:
		return nil, fmt.Errorf("design: unknown architecture %q", arch)
	}
	if err != nil {
		return nil, err
	}
	return b.finish()
}
