package design

import (
	"math/rand"
	"strings"
	"testing"

	"artisan/internal/measure"
	"artisan/internal/spec"
	"artisan/internal/topology"
)

// analyze elaborates a result under its spec's load and measures it.
func analyze(t *testing.T, r *Result) measure.Report {
	t.Helper()
	env := topology.DefaultEnv()
	env.CL, env.RL = r.Spec.CL, r.Spec.RL
	nl, err := r.Topo.Elaborate(env)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	rep, err := measure.Analyze(nl, "out")
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep
}

// Each architecture's default-knob design must meet the spec group it was
// calibrated for — this is the load-bearing guarantee behind Artisan's
// high success rate.
func TestCalibratedRecipesMeetSpecs(t *testing.T) {
	cases := []struct {
		arch  string
		group string
	}{
		{"NMC", "G-1"},
		{"NMC", "G-2"},
		{"NMC", "G-4"},
		{"NMCNR", "G-1"},
		{"NMCF", "G-3"},
		{"NGCC", "G-1"},
		{"MNMC", "G-1"},
		{"DFCFC", "G-5"},
		{"DFCFC", "G-1"},
		{"TCFC", "G-1"},
		{"AZC", "G-1"},
	}
	for _, c := range cases {
		g, err := spec.Group(c.group)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Design(c.arch, g, nil)
		if err != nil {
			t.Errorf("%s/%s: %v", c.arch, c.group, err)
			continue
		}
		rep := analyze(t, r)
		if !g.Satisfied(rep) {
			t.Errorf("%s on %s: %v — %s", c.arch, c.group, rep, spec.Describe(g.Check(rep)))
		}
	}
}

func TestNMCMatchesPaperNumbers(t *testing.T) {
	// With GBW = 1 MHz, Cm1 = 4 pF, Cm2 = 3 pF the paper's Fig. 7 A3
	// derives gm3 = 251.2µ, gm1 = 25.12µ, gm2 = 37.68µ.
	g1, _ := spec.Group("G-1")
	k := Knobs{"GBWMargin": 1e6 / g1.MinGBW, "Cm1": 4e-12, "Cm2Ratio": 0.75}
	r, err := Design("NMC", g1, k)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{"gm3": 251.3e-6, "gm1": 25.13e-6, "gm2": 37.70e-6}
	for name, want := range checks {
		got, ok := r.Param(name)
		if !ok {
			t.Fatalf("param %s missing", name)
		}
		if rel := (got - want) / want; rel > 1e-3 || rel < -1e-3 {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
}

func TestHighGainTriggersCascode(t *testing.T) {
	g2, _ := spec.Group("G-2")
	r, err := Design("NMC", g2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Topo.Stages[1].A0 != 160 {
		t.Errorf("G-2 NMC should upgrade stage 2 to cascode, A0 = %g", r.Topo.Stages[1].A0)
	}
	found := false
	for _, s := range r.Steps {
		if s.Title == "gain enhancement" {
			found = true
		}
	}
	if !found {
		t.Error("gain enhancement step missing from derivation")
	}

	g1, _ := spec.Group("G-1")
	r1, err := Design("NMC", g1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Topo.Stages[1].A0 == 160 {
		t.Error("G-1 NMC should not need the cascode upgrade")
	}
}

func TestTranscriptShape(t *testing.T) {
	g1, _ := spec.Group("G-1")
	r, err := Design("NMC", g1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Steps) < 6 {
		t.Errorf("NMC flow has %d steps, want >= 6", len(r.Steps))
	}
	tr := r.Transcript()
	for _, want := range []string{
		"Q0:", "A0:", "nested Miller compensation",
		"Butterworth", "[calculator] gm3 = 8*pi*GBW*CL",
		"final behavioral netlist",
	} {
		if !strings.Contains(tr, want) {
			t.Errorf("transcript missing %q", want)
		}
	}
	// Steps are consecutively indexed.
	for i, s := range r.Steps {
		if s.Index != i {
			t.Errorf("step %d has index %d", i, s.Index)
		}
	}
}

func TestKnobsSampling(t *testing.T) {
	g1, _ := spec.Group("G-1")
	rng := rand.New(rand.NewSource(1))
	k0, err := DefaultKnobs("NMC", g1)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := SampleKnobs("NMC", g1, rng, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(k1) != len(k0) {
		t.Fatalf("sampled knobs lost keys: %v vs %v", k1, k0)
	}
	same := true
	for key := range k0 {
		ratio := k1[key] / k0[key]
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("knob %s jittered too far: %g", key, ratio)
		}
		if k1[key] != k0[key] {
			same = false
		}
	}
	if same {
		t.Error("sampling at temperature 0.15 changed nothing")
	}
	// Zero temperature = defaults.
	kz, _ := SampleKnobs("NMC", g1, rng, 0)
	for key := range k0 {
		if kz[key] != k0[key] {
			t.Errorf("zero-temperature sample changed %s", key)
		}
	}
}

// Sampled designs at the operating temperature succeed most of the time —
// the stochastic behaviour behind the paper's 7–9/10 success rates.
func TestSampledSuccessRates(t *testing.T) {
	cases := []struct {
		arch, group string
		minSucc     int
	}{
		{"NMC", "G-1", 6},
		{"NMC", "G-4", 6},
		{"NMCF", "G-3", 4},
		{"DFCFC", "G-5", 5},
	}
	rng := rand.New(rand.NewSource(99))
	for _, c := range cases {
		g, _ := spec.Group(c.group)
		succ := 0
		const trials = 10
		for i := 0; i < trials; i++ {
			k, err := SampleKnobs(c.arch, g, rng, 0.12)
			if err != nil {
				t.Fatal(err)
			}
			r, err := Design(c.arch, g, k)
			if err != nil {
				continue
			}
			if g.Satisfied(analyze(t, r)) {
				succ++
			}
		}
		if succ < c.minSucc {
			t.Errorf("%s on %s: %d/%d sampled successes, want >= %d",
				c.arch, c.group, succ, trials, c.minSucc)
		}
	}
}

func TestLowPowerKnobs(t *testing.T) {
	g4, _ := spec.Group("G-4")
	k, _ := DefaultKnobs("NMC", g4)
	if k["Cm1"] != 2e-12 {
		t.Errorf("low-power NMC should shrink Cm1, got %g", k["Cm1"])
	}
	g1, _ := spec.Group("G-1")
	k1, _ := DefaultKnobs("NMC", g1)
	if k1["Cm1"] != 4e-12 {
		t.Errorf("standard NMC Cm1 = %g, want 4p", k1["Cm1"])
	}
}

func TestUnknownArchitecture(t *testing.T) {
	g1, _ := spec.Group("G-1")
	if _, err := Design("XYZ", g1, nil); err == nil {
		t.Error("unknown architecture accepted")
	}
	if _, err := DefaultKnobs("XYZ", g1); err == nil {
		t.Error("DefaultKnobs accepted unknown architecture")
	}
	if _, err := SampleKnobs("XYZ", g1, rand.New(rand.NewSource(1)), 0.1); err == nil {
		t.Error("SampleKnobs accepted unknown architecture")
	}
}

func TestAllArchitecturesProduceDerivations(t *testing.T) {
	g1, _ := spec.Group("G-1")
	for _, arch := range Architectures() {
		g := g1
		if arch == "DFCFC" {
			g, _ = spec.Group("G-5")
		}
		r, err := Design(arch, g, nil)
		if err != nil {
			t.Errorf("%s: %v", arch, err)
			continue
		}
		if len(r.Steps) < 3 {
			t.Errorf("%s: only %d steps", arch, len(r.Steps))
		}
		if r.Topo == nil || r.Topo.Name != arch {
			t.Errorf("%s: topology name %q", arch, r.Topo.Name)
		}
		if !strings.Contains(r.Transcript(), "netlist") {
			t.Errorf("%s: transcript missing netlist step", arch)
		}
		if r.FormatParams() == "" {
			t.Errorf("%s: no formatted parameters", arch)
		}
		if r.ExpectedFoM() <= 0 {
			t.Errorf("%s: ExpectedFoM = %g", arch, r.ExpectedFoM())
		}
	}
}

func TestKnobsCloneAndString(t *testing.T) {
	k := Knobs{"A": 1, "B": 2e-12}
	c := k.Clone()
	c["A"] = 5
	if k["A"] != 1 {
		t.Error("Clone shares storage")
	}
	s := k.String()
	if !strings.Contains(s, "A=1") || !strings.Contains(s, "B=2p") {
		t.Errorf("Knobs.String = %q", s)
	}
}

// Every Miller-family architecture takes the cascode gain-enhancement
// branch when pushed to a 110 dB spec.
func TestCascodeBranchAllArchitectures(t *testing.T) {
	g2, _ := spec.Group("G-2")
	for _, arch := range []string{"NMC", "NMCNR", "NMCF", "MNMC", "NGCC", "TCFC", "AZC"} {
		r, err := Design(arch, g2, nil)
		if err != nil {
			t.Errorf("%s: %v", arch, err)
			continue
		}
		if r.Topo.Stages[1].A0 != 160 {
			t.Errorf("%s: cascode upgrade not taken for G-2 (A0=%g)", arch, r.Topo.Stages[1].A0)
		}
	}
	// DFCFC too, under its huge-load spec with the gain pushed.
	g5, _ := spec.Group("G-5")
	g5.MinGainDB = 110
	r, err := Design("DFCFC", g5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Topo.Stages[1].A0 != 160 {
		t.Error("DFCFC cascode branch not taken")
	}
}

// Invalid knob values must surface as errors, not panics or bogus designs.
func TestInvalidKnobsRejected(t *testing.T) {
	g1, _ := spec.Group("G-1")
	bad := []Knobs{
		{"GBWMargin": 1.4, "Cm1": -4e-12, "Cm2Ratio": 0.75}, // negative cap
		{"GBWMargin": 1.4, "Cm1": 0, "Cm2Ratio": 0.75},      // zero cap
		{"GBWMargin": -1, "Cm1": 4e-12, "Cm2Ratio": 0.75},   // negative GBW → negative gm
	}
	for i, k := range bad {
		if r, err := Design("NMC", g1, k); err == nil {
			t.Errorf("bad knobs %d accepted: %v", i, r.Topo.Summary())
		}
	}
}

// Missing knob keys hit the calculator's undefined-variable error.
func TestMissingKnobKey(t *testing.T) {
	g1, _ := spec.Group("G-1")
	if _, err := Design("NMC", g1, Knobs{"GBWMargin": 1.4}); err == nil {
		t.Error("missing Cm1 knob accepted")
	}
}
