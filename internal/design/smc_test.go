package design

import (
	"strings"
	"testing"

	"artisan/internal/spec"
)

// lowGainSpec is a typical buffer-class requirement that a two-stage
// opamp serves better than any three-stage: modest gain, wide GBW.
func lowGainSpec() spec.Spec {
	return spec.Spec{
		Name: "buffer", MinGainDB: 70, MinGBW: 2e6, MinPM: 55,
		MaxPower: 150e-6, CL: 5e-12, RL: 1e6, VDD: 1.8,
	}
}

func TestSMCMeetsLowGainSpec(t *testing.T) {
	g := lowGainSpec()
	for _, arch := range []string{"SMC", "SMCNR"} {
		r, err := Design(arch, g, nil)
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		if !r.Topo.TwoStage {
			t.Errorf("%s should produce a two-stage topology", arch)
		}
		rep := analyze(t, r)
		if !g.Satisfied(rep) {
			t.Errorf("%s: %v — %s", arch, rep, spec.Describe(g.Check(rep)))
		}
		// The two-stage should be frugal: well under half the budget.
		if rep.Power > g.MaxPower/2 {
			t.Errorf("%s power %g not frugal", arch, rep.Power)
		}
	}
}

func TestSMCDerivationShape(t *testing.T) {
	r, err := Design("SMC", lowGainSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := r.Transcript()
	for _, want := range []string{"two-stage", "Miller", "gm1 = 2*pi*GBW*Cc", "two-stage cannot be cascode-upgraded"} {
		if !strings.Contains(tr, want) {
			t.Errorf("SMC transcript missing %q", want)
		}
	}
	// SMCNR adds the nulling resistor step.
	rn, err := Design("SMCNR", lowGainSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rn.Transcript(), "Rz = k_RzFactor/gm2") {
		t.Error("SMCNR transcript missing nulling step")
	}
}

// SMC honestly cannot reach the paper's 85 dB groups: the projected gain
// lands near 76 dB, which is why the ToT routes those specs to the
// three-stage family.
func TestSMCGainCeiling(t *testing.T) {
	g1, _ := spec.Group("G-1")
	r, err := Design("SMC", g1, nil)
	if err != nil {
		t.Fatal(err)
	}
	av, ok := r.Param("AvdB")
	if !ok {
		t.Fatal("AvdB not computed")
	}
	if av > 80 {
		t.Errorf("two-stage projected gain %g dB should stay below 80", av)
	}
	rep := analyze(t, r)
	if g1.Satisfied(rep) {
		t.Error("SMC should not satisfy G-1's 85 dB gain spec")
	}
}
