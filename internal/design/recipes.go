package design

import (
	"fmt"
	"strings"

	"artisan/internal/calc"
	"artisan/internal/spec"
	"artisan/internal/topology"
	"artisan/internal/units"
)

// builder accumulates design steps, executing formulas in a shared
// calculator session whose environment is preloaded with the spec
// quantities and the sampled knobs.
type builder struct {
	arch  string
	spec  spec.Spec
	knobs Knobs
	sess  *calc.Session
	steps []Step
	topo  *topology.Topology
}

func newBuilder(arch string, s spec.Spec, k Knobs) *builder {
	b := &builder{arch: arch, spec: s, knobs: k, sess: calc.NewSession()}
	env := b.sess.Env()
	env.Set("GainSpec", s.MinGainDB)
	env.Set("GBWspec", s.MinGBW)
	env.Set("PMspec", s.MinPM)
	env.Set("Pmax", s.MaxPower)
	env.Set("CL", s.CL)
	env.Set("RL", s.RL)
	env.Set("VDD", s.VDD)
	env.Set("gmid", 16)    // transconductance efficiency used for power
	env.Set("Ibias", 2e-6) // bias-network overhead
	env.Set("A1", topology.DefaultStageA0[0])
	env.Set("A2", topology.DefaultStageA0[1])
	env.Set("A3", topology.DefaultStageA0[2])
	for key, v := range k {
		env.Set("k_"+key, v)
	}
	return b
}

// step records one QA exchange, running its formulas through the
// calculator tool.
func (b *builder) step(title, question, answer string, formulas ...string) error {
	st := Step{Index: len(b.steps), Title: title, Question: question, Answer: answer}
	for _, f := range formulas {
		out, err := b.sess.Run(f)
		if err != nil {
			return fmt.Errorf("design: %s step %q formula %q: %w", b.arch, title, f, err)
		}
		st.Formulas = append(st.Formulas, f)
		st.Results = append(st.Results, out)
	}
	b.steps = append(b.steps, st)
	return nil
}

// val reads a bound calculator variable; the recipes only read names they
// have themselves defined, so a miss is a programming error.
func (b *builder) val(name string) float64 {
	v, ok := b.sess.Env().Get(name)
	if !ok {
		panic(fmt.Sprintf("design: internal error: %s not bound", name))
	}
	return v
}

func (b *builder) finish() (*Result, error) {
	if b.topo == nil {
		return nil, fmt.Errorf("design: %s procedure produced no topology", b.arch)
	}
	if err := b.topo.Validate(); err != nil {
		return nil, fmt.Errorf("design: %s produced invalid topology: %w", b.arch, err)
	}
	params := map[string]float64{}
	env := b.sess.Env()
	for _, name := range env.Names() {
		if v, ok := env.Get(name); ok {
			params[name] = v
		}
	}
	return &Result{
		Arch: b.arch, Spec: b.spec, Knobs: b.knobs,
		Topo: b.topo, Steps: b.steps, Params: params,
	}, nil
}

// gainCheck appends the stage-gain verification step shared by the Miller
// family; when the projected gain misses the spec it upgrades the second
// stage to a cascode (A2: 45 → 160), the standard gain-enhancement move.
func (b *builder) gainCheck() (cascode bool, err error) {
	if err := b.step("gain budget",
		"Does the stage gain budget meet the gain spec?",
		"The DC gain is Av = A1·A2·gm3·(Ro3||RL) with Ro3 = A3/gm3. Check it against the spec.",
		"Ro3 = A3/gm3",
		"AvdB = db(A1*A2*gm3*(Ro3||RL))",
	); err != nil {
		return false, err
	}
	if b.val("AvdB") < b.spec.MinGainDB+1 {
		if err := b.step("gain enhancement",
			"The projected gain misses the spec. How to enhance it?",
			"Replace the second stage with a telescopic-cascode stage: its intrinsic gain rises from A2 = 45 to 160 without extra current.",
			"A2 = 160",
			"AvdB = db(A1*A2*gm3*(Ro3||RL))",
		); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// powerCheck appends the power-budget step. extra lists additional
// branch-current terms beyond the skeleton (already divided by gmid).
func (b *builder) powerCheck(extraExpr string) error {
	expr := "Itot = 2*gm1/gmid + gm2/gmid + gm3/gmid + Ibias"
	if extraExpr != "" {
		expr += " + " + extraExpr
	}
	return b.step("power budget",
		"Estimate the power consumption and check it against the spec.",
		"Each stage burns Id = gm/(gm/Id); the differential input pair needs two branches, and the bias network adds a fixed overhead.",
		expr,
		"P = VDD*Itot",
	)
}

// designNMC is the paper's 8-step NMC flow (Fig. 4 and the Fig. 7 chat
// log): zero-pole analysis, Butterworth pole allocation, parameter
// solving, gain/power budgeting, netlist assembly.
func (b *builder) designNMC(nulling bool) error {
	if err := b.step("architecture",
		b.spec.Prompt(),
		"Use the classic nested Miller compensation (NMC) architecture: two nested Miller capacitors Cm1 and Cm2 control the dominant and non-dominant poles respectively. It is the best-characterised general-purpose three-stage compensation.",
	); err != nil {
		return err
	}
	if err := b.step("zero-pole analysis",
		"Based on the process, please analyze zero-pole distributions.",
		"Under the Miller effect of Cm1 and Cm2 the dominant pole is p1 = 1/(2π·Cm1·gm2·gm3·Ro1·Ro2·(Ro3||RL)); the two non-dominant poles form a pair governed by gm2, gm3, Cm2 and CL; the feedforward path through Cm1 leaves an RHP zero near gm3/(Cm1+Cm2).",
	); err != nil {
		return err
	}
	if err := b.step("pole allocation",
		"How to allocate these poles in an NMC opamp?",
		"Set p1 < GBW < |p2| ≤ |p3| to obtain a single-pole response up to GBW; by the Butterworth methodology allocate GBW:p2:p3 = 1:2:4 for a maximally-flat response with ≈60° phase margin. Since Av·p1 = gm1/Cm1, GBW = gm1/(2π·Cm1).",
	); err != nil {
		return err
	}
	if err := b.step("solve parameters",
		"Please solve main design parameters from these equations.",
		"Empirically target GBW above the spec with margin; take Cm1 and Cm2 in the pF range; then p3 = 2·GBW fixes gm3 = 8π·GBW·CL, and the Butterworth ratios give gm1 and gm2.",
		"GBW = k_GBWMargin*GBWspec",
		"Cm1 = k_Cm1",
		"Cm2 = k_Cm2Ratio*Cm1",
		"gm3 = 8*pi*GBW*CL",
		"gm1 = gm3*Cm1/(4*CL)",
		"gm2 = gm3*Cm2/(2*CL)",
	); err != nil {
		return err
	}
	cascode, err := b.gainCheck()
	if err != nil {
		return err
	}
	if err := b.powerCheck(""); err != nil {
		return err
	}
	gm1, gm2, gm3 := b.val("gm1"), b.val("gm2"), b.val("gm3")
	cm1, cm2 := b.val("Cm1"), b.val("Cm2")
	if nulling {
		if err := b.step("nulling resistor",
			"How to remove the RHP feedforward zero?",
			"Insert a nulling resistor Rz ≈ 1/gm3 in series with Cm1; the zero moves to the LHP and adds phase lead.",
			"Rz = k_RzFactor/gm3",
		); err != nil {
			return err
		}
		b.topo = topology.NMCNR(gm1, gm2, gm3, cm1, cm2, b.val("Rz"))
	} else {
		b.topo = topology.NMC(gm1, gm2, gm3, cm1, cm2)
	}
	if cascode {
		b.topo.Stages[1].A0 = 160
	}
	return b.assembleStep()
}

func (b *builder) designNMCF() error {
	if err := b.step("architecture",
		b.spec.Prompt(),
		"Use NMC with a feedforward transconductance stage (NMCF): the feedforward gmf from the first-stage output to the output forms a push-pull output pair and a LHP zero, relaxing the third-stage gm needed for a wide GBW — the right choice when the GBW spec dominates.",
	); err != nil {
		return err
	}
	if err := b.step("zero-pole analysis",
		"Please analyze the zero-pole distributions with the feedforward stage.",
		"The LHP zero z ≈ gm3/(Cm1·(gm3/gmf)) partially cancels the first non-dominant pole, so the output-stage condition relaxes from gm3 = 8π·GBW·CL to a fraction of it; the second stage is strengthened to keep the inner loop fast.",
	); err != nil {
		return err
	}
	if err := b.step("solve parameters",
		"Please solve the main design parameters.",
		"Target GBW with margin; take a small Cm1 (the feedforward path carries the slack), then size the stages by the calibrated NMCF ratios.",
		"GBW = k_GBWMargin*GBWspec",
		"Cm1 = k_Cm1",
		"Cm2 = k_Cm2Ratio*Cm1",
		"gm1 = 2*pi*GBW*Cm1",
		"gm2 = k_Gm2Ratio*gm1",
		"gm3 = k_Gm3Factor*2*pi*GBW*CL",
		"gmf = k_GmfRatio*gm3",
	); err != nil {
		return err
	}
	cascode, err := b.gainCheck()
	if err != nil {
		return err
	}
	if err := b.powerCheck("gmf/gmid"); err != nil {
		return err
	}
	b.topo = topology.NMCF(b.val("gm1"), b.val("gm2"), b.val("gm3"),
		b.val("Cm1"), b.val("Cm2"), b.val("gmf"))
	if cascode {
		b.topo.Stages[1].A0 = 160
	}
	return b.assembleStep()
}

func (b *builder) designMNMC() error {
	if err := b.step("architecture",
		b.spec.Prompt(),
		"Use multipath NMC (MNMC): a feedforward transconductor from the input to the second-stage output creates a parallel fast path whose zero cancels the first non-dominant pole.",
	); err != nil {
		return err
	}
	if err := b.step("solve parameters",
		"Please solve the main design parameters.",
		"Size the skeleton by the Butterworth NMC rules, then match the multipath transconductor to gm1 for pole-zero cancellation; the inner Miller capacitor shrinks because the multipath carries the inner-loop phase lead.",
		"GBW = k_GBWMargin*GBWspec",
		"Cm1 = k_Cm1",
		"Cm2 = k_Cm2Ratio*Cm1",
		"gm1 = 2*pi*GBW*Cm1",
		"gm2 = k_Gm2Boost*4*pi*GBW*Cm2",
		"gm3 = k_Gm3Boost*8*pi*GBW*CL",
		"gmf = k_GmfRatio*gm1",
	); err != nil {
		return err
	}
	cascode, err := b.gainCheck()
	if err != nil {
		return err
	}
	if err := b.powerCheck("gmf/gmid"); err != nil {
		return err
	}
	b.topo = topology.MNMC(b.val("gm1"), b.val("gm2"), b.val("gm3"),
		b.val("Cm1"), b.val("Cm2"), b.val("gmf"))
	if cascode {
		b.topo.Stages[1].A0 = 160
	}
	return b.assembleStep()
}

func (b *builder) designNGCC() error {
	if err := b.step("architecture",
		b.spec.Prompt(),
		"Use nested Gm-C compensation (NGCC): feedforward transconductors replicate the input at every nesting level (gmf1 = gm1 into the second-stage output, gmf2 = gm3 into the output), cancelling both feedforward zeros exactly.",
	); err != nil {
		return err
	}
	if err := b.step("solve parameters",
		"Please solve the main design parameters.",
		"Size the skeleton by the Butterworth NMC rules and set the replica feedforwards gmf1 = gm1 and gmf2 = gm3.",
		"GBW = k_GBWMargin*GBWspec",
		"Cm1 = k_Cm1",
		"Cm2 = k_Cm2Ratio*Cm1",
		"gm1 = 2*pi*GBW*Cm1",
		"gm2 = 4*pi*GBW*Cm2",
		"gm3 = 8*pi*GBW*CL",
		"gmf1 = gm1",
		"gmf2 = gm3",
	); err != nil {
		return err
	}
	cascode, err := b.gainCheck()
	if err != nil {
		return err
	}
	if err := b.powerCheck("gmf1/gmid + gmf2/gmid"); err != nil {
		return err
	}
	b.topo = topology.NGCC(b.val("gm1"), b.val("gm2"), b.val("gm3"),
		b.val("Cm1"), b.val("Cm2"), b.val("gmf1"), b.val("gmf2"))
	if cascode {
		b.topo.Stages[1].A0 = 160
	}
	return b.assembleStep()
}

func (b *builder) designDFCFC() error {
	if err := b.step("architecture",
		b.spec.Prompt(),
		"The load capacitance is far beyond what nested Miller compensation can drive within the power budget (gm3 = 8π·GBW·CL would be tens of mS). Use damping-factor-control frequency compensation (DFCFC): remove the inner Miller capacitor, add a DFC block — a gain stage gm4 with feedback capacitor Cm3 acting as a frequency-dependent capacitor — to damp the non-dominant complex poles, and add a feedforward stage gmf for a push-pull output.",
	); err != nil {
		return err
	}
	if err := b.step("zero-pole analysis",
		"Please analyze the pole distribution with the DFC block.",
		"The dominant pole is still set by Cm1; the second and third poles form a complex pair whose damping factor is controlled by gm4 and Cm3 — hence the name. With proper damping the pair can sit near GBW without eroding the phase margin, so gm3 only needs a small fraction of the NMC value.",
	); err != nil {
		return err
	}
	if err := b.step("solve parameters",
		"Please solve the main design parameters.",
		"Target GBW with a generous margin (the capacitive feedthrough of Cm1 into the huge CL costs bandwidth), then size by the calibrated DFCFC ratios.",
		"GBW = k_GBWMargin*GBWspec",
		"Cm1 = k_Cm1",
		"gm1 = 2*pi*GBW*Cm1",
		"gm2 = k_Gm2Ratio*gm1",
		"gm3 = k_Gm3Factor*2*pi*GBW*CL",
		"gm4 = k_Gm4Ratio*gm3",
		"Cm3 = k_Cm3Ratio*Cm1",
		"gmf = k_GmfRatio*gm3",
	); err != nil {
		return err
	}
	cascode, err := b.gainCheck()
	if err != nil {
		return err
	}
	if err := b.powerCheck("gm4/gmid + gmf/gmid"); err != nil {
		return err
	}
	gm1, gm2, gm3 := b.val("gm1"), b.val("gm2"), b.val("gm3")
	b.topo = topology.DFCFC(gm1, gm2, gm3, b.val("Cm1"), b.val("gm4"), b.val("Cm3"), b.val("gmf"))
	if cascode {
		b.topo.Stages[1].A0 = 160
	}
	return b.assembleStep()
}

func (b *builder) designTCFC() error {
	if err := b.step("architecture",
		b.spec.Prompt(),
		"Use transconductance-with-capacitances feedback compensation (TCFC): the outer compensation current is relayed through a current buffer, removing the RHP feedforward zero and decoupling the compensation from the output swing.",
	); err != nil {
		return err
	}
	if err := b.step("solve parameters",
		"Please solve the main design parameters.",
		"Size the input stage against the compensation capacitor Cmt, relay with gmt, and give the output stage headroom over the load pole.",
		"GBW = k_GBWMargin*GBWspec",
		"Cmt = k_Cmt",
		"gm1 = 2*pi*GBW*Cmt",
		"gm2 = k_Gm2Ratio*gm1",
		"gmt = k_GmtRatio*gm1",
		"gm3 = k_Gm3Factor*2*pi*GBW*CL",
		"Cm2 = k_Cm2",
	); err != nil {
		return err
	}
	cascode, err := b.gainCheck()
	if err != nil {
		return err
	}
	if err := b.powerCheck("gmt/gmid"); err != nil {
		return err
	}
	b.topo = topology.TCFC(b.val("gm1"), b.val("gm2"), b.val("gm3"),
		b.val("Cmt"), b.val("gmt"), b.val("Cm2"))
	if cascode {
		b.topo.Stages[1].A0 = 160
	}
	return b.assembleStep()
}

func (b *builder) designAZC() error {
	if err := b.step("architecture",
		b.spec.Prompt(),
		"Use active-zero compensation (AZC): an auxiliary transconductor coupled through a capacitor from the output back to the first-stage output places a tunable LHP zero that lifts the phase near crossover.",
	); err != nil {
		return err
	}
	if err := b.step("solve parameters",
		"Please solve the main design parameters.",
		"Size the skeleton as a Miller amplifier and tune the active-zero branch by the calibrated ratios.",
		"GBW = k_GBWMargin*GBWspec",
		"Cm1 = k_Cm1",
		"gm1 = 2*pi*GBW*Cm1",
		"gm2 = k_Gm2Ratio*gm1",
		"gm3 = k_Gm3Factor*4*pi*GBW*CL",
		"gma = k_GmaRatio*gm1",
		"Cm2 = k_Cm2",
	); err != nil {
		return err
	}
	cascode, err := b.gainCheck()
	if err != nil {
		return err
	}
	if err := b.powerCheck("gma/gmid"); err != nil {
		return err
	}
	b.topo = topology.AZC(b.val("gm1"), b.val("gm2"), b.val("gm3"),
		b.val("Cm1"), b.val("gma"), b.val("Cm2"))
	if cascode {
		b.topo.Stages[1].A0 = 160
	}
	return b.assembleStep()
}

// assembleStep closes every procedure: emit the behavioral netlist.
func (b *builder) assembleStep() error {
	env := topology.DefaultEnv()
	env.CL, env.RL = b.spec.CL, b.spec.RL
	nl, err := b.topo.Elaborate(env)
	if err != nil {
		return err
	}
	return b.step("netlist",
		"Design completed. Please give the final netlist.",
		"The final behavioral netlist with parameters instantiated is:\n"+nl.String(),
	)
}

// ExpectedFoM estimates the figure of merit of a result from its solved
// parameters (before simulation).
func (r *Result) ExpectedFoM() float64 {
	gbw, ok1 := r.Param("GBW")
	p, ok2 := r.Param("P")
	if !ok1 || !ok2 {
		return 0
	}
	return spec.FoM(gbw, r.Spec.CL, p)
}

// FormatParams renders the headline solved parameters.
func (r *Result) FormatParams() string {
	keys := []string{"gm1", "gm2", "gm3", "gm4", "gmf", "gmf1", "gmf2", "gmt", "gma",
		"Cm1", "Cm2", "Cm3", "Cmt", "Rz", "GBW", "P"}
	var parts []string
	for _, k := range keys {
		if v, ok := r.Param(k); ok {
			parts = append(parts, fmt.Sprintf("%s=%s", k, units.Format(v)))
		}
	}
	return strings.Join(parts, " ")
}

// designSMC is the classic two-stage Miller flow — the "other opamp
// topologies" extension the paper's §2.2 promises. The output stage gm2
// is placed against the load pole (p2 = gm2/(2π·CL) well beyond GBW) and
// the input stage against the compensation capacitor.
func (b *builder) designSMC(nulling bool) error {
	if err := b.step("architecture",
		b.spec.Prompt(),
		"The gain requirement is modest, so a two-stage simple Miller compensated (SMC) opamp suffices: one compensation capacitor Cc splits the poles of the two stages. It is the most frugal architecture that still delivers a dominant-pole response.",
	); err != nil {
		return err
	}
	if err := b.step("zero-pole analysis",
		"Please analyze the zero-pole distribution of the two-stage opamp.",
		"Miller splitting pushes the dominant pole to p1 = 1/(2π·Cc·gm2·Ro1·(Ro2||RL)) and the output pole to p2 ≈ gm2/(2π·CL); GBW = gm1/(2π·Cc). The capacitive feedforward leaves an RHP zero at gm2/(2π·Cc).",
	); err != nil {
		return err
	}
	if err := b.step("solve parameters",
		"Please solve the main design parameters.",
		"Target GBW with margin; pick Cc in the pF range; place the output pole a few times beyond GBW (gm2 = k·2π·GBW·CL) and size the input stage to the compensation capacitor.",
		"GBW = k_GBWMargin*GBWspec",
		"Cc = k_Cc",
		"gm1 = 2*pi*GBW*Cc",
		"gm2 = k_Gm2Factor*2*pi*GBW*CL",
	); err != nil {
		return err
	}
	// Two-stage gain budget: Av = A1·gm2·(Ro2||RL); no cascode upgrade
	// path — when the spec wants more, a third stage is the answer (the
	// knowledge base routes such specs to the NMC family instead).
	if err := b.step("gain budget",
		"Does the two-stage gain budget meet the gain spec?",
		"The DC gain is Av = A1·gm2·(Ro2||RL) with Ro2 = A3/gm2; a two-stage cannot be cascode-upgraded much further — if this misses, the spec needs a third stage.",
		"Ro2 = A3/gm2",
		"AvdB = db(A1*gm2*(Ro2||RL))",
	); err != nil {
		return err
	}
	if err := b.step("power budget",
		"Estimate the power consumption and check it against the spec.",
		"Two branches for the input pair, one for the output stage, plus bias overhead.",
		"Itot = 2*gm1/gmid + gm2/gmid + Ibias",
		"P = VDD*Itot",
	); err != nil {
		return err
	}
	gm1, gm2, cc := b.val("gm1"), b.val("gm2"), b.val("Cc")
	if nulling {
		if err := b.step("nulling resistor",
			"How to remove the RHP feedforward zero?",
			"Insert Rz ≈ 1/gm2 in series with Cc; the zero moves into the LHP and adds phase lead near crossover.",
			"Rz = k_RzFactor/gm2",
		); err != nil {
			return err
		}
		b.topo = topology.SMCNR(gm1, gm2, cc, b.val("Rz"))
	} else {
		b.topo = topology.SMC(gm1, gm2, cc)
	}
	return b.assembleStep()
}
