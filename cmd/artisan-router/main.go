// Command artisan-router is the stateless front of a multi-node Artisan
// fleet. It owns no serving state — restart it freely — and proxies the
// serving API to worker nodes (artisan-server processes) selected by
// consistent hashing over the canonical request body, so duplicate
// requests land on the same node and its singleflight coalescing fires
// exactly once fleet-wide.
//
//	artisan-router -addr :8080 -nodes http://10.0.0.1:8081,http://10.0.0.2:8081
//
// Behaviour:
//
//   - POST /design, /design/batch, /simulate, /simulate/batch, /jobs are
//     sharded to the owning node by canonical body hash, failing over
//     clockwise around the ring (with backoff and a per-node circuit
//     breaker) while nodes are down.
//   - GET/DELETE /jobs/{id} route by the node prefix of fleet-unique job
//     ids (workers started with -node-id); GET /jobs and GET /stats fan
//     out to every node and merge.
//   - GET /healthz reports the router's fleet view (503 when no node is
//     healthy); GET /metrics serves the router's own registry.
//   - Node membership follows each worker's /healthz: a draining node
//     answers 503 and leaves the ring before its queue closes.
//   - X-Request-ID, X-Tenant, and X-Priority pass through untouched (a
//     missing request id is generated at the edge).
//   - X-Deadline-Ms is an end-to-end budget: accepted from the client or
//     minted by -default-deadline, decremented across hops and failover
//     attempts, 504 when it runs out before any node answers.
//   - Slow GET /jobs/{id} polls are hedged against the rest of the fleet
//     after -hedge-delay; hedge launches count into
//     artisan_router_hedges_total.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"artisan/internal/cluster"
	"artisan/internal/resilience"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		nodes     = flag.String("nodes", "", "comma-separated worker base URLs (required)")
		vnodes    = flag.Int("vnodes", cluster.DefaultVNodes, "hash-ring virtual nodes per worker")
		healthInt = flag.Duration("health-interval", 2*time.Second, "node health-check period")
		retryMax  = flag.Int("retry-max", 3, "forwarding attempts across ring candidates")
		retryJit  = flag.Float64("retry-jitter", 0.5, "failover backoff jitter fraction (de-synchronizes retry storms)")
		breakThr  = flag.Int("breaker-threshold", 3, "consecutive failures that open a node's breaker")
		breakCool = flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before probing a node again")
		hedgeDly  = flag.Duration("hedge-delay", 25*time.Millisecond, "delay before hedging a slow GET /jobs/{id} or /stats read (negative disables)")
		deadline  = flag.Duration("default-deadline", 0, "X-Deadline-Ms budget minted for requests without one (0 = unbounded)")
		drainTime = flag.Duration("drain-timeout", 10*time.Second, "shutdown drain budget")
	)
	flag.Parse()

	if *nodes == "" {
		log.Fatal("artisan-router: -nodes is required")
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Nodes:          strings.Split(*nodes, ","),
		VNodes:         *vnodes,
		HealthInterval: *healthInt,
		Retry: resilience.RetryPolicy{
			MaxAttempts: *retryMax,
			BaseDelay:   25 * time.Millisecond,
			Jitter:      *retryJit,
		},
		BreakerThreshold: *breakThr,
		BreakerCooldown:  *breakCool,
		HedgeDelay:       *hedgeDly,
		DefaultDeadline:  *deadline,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	srv := &http.Server{
		Addr:        *addr,
		Handler:     rt,
		ReadTimeout: 10 * time.Second,
		// No write timeout: batch NDJSON streams are long-lived.
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("artisan-router listening on %s, fleet %s", *addr, *nodes)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutdown: draining connections (budget %s)", *drainTime)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTime)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
		os.Exit(1)
	}
	log.Printf("artisan-router stopped")
}
