// Command datasetgen builds the opamp dataset of §3.4 and prints the
// Table 1 accounting; with -train it also runs the simulated DAPT/SFT
// pipeline and reports the held-out loss curves.
//
// Usage:
//
//	datasetgen                      # 1/400-scale build, Table 1
//	datasetgen -scale 0.01 -train   # larger build + training simulation
//	datasetgen -samples 3           # show example NetlistTuples and QA
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"artisan/internal/corpus"
	"artisan/internal/llm"
	"artisan/internal/telemetry"
)

// dumpJSONL writes the four dataset splits as JSON-lines files.
func dumpJSONL(dir string, build *corpus.Build) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, rows []any) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		for _, r := range rows {
			if err := enc.Encode(r); err != nil {
				return err
			}
		}
		return nil
	}
	rows := func(n int, get func(i int) any) []any {
		out := make([]any, n)
		for i := range out {
			out[i] = get(i)
		}
		return out
	}
	if err := write("corpus.jsonl", rows(len(build.Corpus), func(i int) any { return build.Corpus[i] })); err != nil {
		return err
	}
	if err := write("tuples.jsonl", rows(len(build.Tuples), func(i int) any { return build.Tuples[i] })); err != nil {
		return err
	}
	if err := write("alpaca.jsonl", rows(len(build.Alpaca), func(i int) any { return build.Alpaca[i] })); err != nil {
		return err
	}
	return write("designqa.jsonl", rows(len(build.DesignQA), func(i int) any { return build.DesignQA[i] }))
}

func main() {
	var (
		scale   = flag.Float64("scale", 1.0/400, "dataset scale relative to the paper (1.0 = full)")
		seed    = flag.Int64("seed", 1, "random seed")
		train   = flag.Bool("train", false, "run the DAPT+SFT training simulation")
		samples = flag.Int("samples", 0, "print this many example samples per split")
		dump    = flag.String("dump", "", "write the dataset as JSONL files into this directory")
		debug   = flag.String("debug-addr", "", "serve net/http/pprof on this address while generating (empty = off)")
	)
	flag.Parse()

	if *debug != "" {
		// Large -scale builds are CPU- and allocation-heavy; pprof makes
		// them profileable: go tool pprof http://<addr>/debug/pprof/profile
		errc := make(chan error, 1)
		telemetry.ServeDebug(*debug, nil, errc)
		fmt.Fprintf(os.Stderr, "datasetgen: pprof on %s\n", *debug)
	}

	cfg := corpus.DefaultConfig(*seed)
	cfg.Scale = *scale
	build, err := corpus.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datasetgen:", err)
		os.Exit(1)
	}
	tab := build.Table1(cfg.Scale)
	fmt.Print(tab)
	fmt.Println()
	fmt.Println("extrapolated to paper scale:")
	fmt.Print(tab.ScaledToPaper())

	if *samples > 0 {
		fmt.Println("\n--- example collected-corpus documents ---")
		for i := 0; i < *samples && i < len(build.Corpus); i++ {
			fmt.Printf("[%s]\n%s\n\n", build.Corpus[i].Title, build.Corpus[i].Text)
		}
		fmt.Println("--- example NetlistTuples ---")
		for i := 0; i < *samples && i < len(build.Tuples); i++ {
			fmt.Printf("netlist:\n%s\ndescription:\n%s\n\n",
				build.Tuples[i].Netlist, build.Tuples[i].Description)
		}
		fmt.Println("--- example DesignQA ---")
		for i := 0; i < *samples && i < len(build.DesignQA); i++ {
			fmt.Printf("Q: %s\nA: %s\n\n", build.DesignQA[i].Question, build.DesignQA[i].Answer)
		}
	}

	if *dump != "" {
		if err := dumpJSONL(*dump, build); err != nil {
			fmt.Fprintln(os.Stderr, "datasetgen:", err)
			os.Exit(1)
		}
		fmt.Printf("\ndataset written to %s (corpus.jsonl, tuples.jsonl, alpaca.jsonl, designqa.jsonl)\n", *dump)
	}

	if *train {
		fmt.Println("\n--- training simulation (DAPT then SFT) ---")
		model, rep, err := llm.Train(build.Dataset(), llm.DefaultTrainConfig(*seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, "datasetgen:", err)
			os.Exit(1)
		}
		for _, ph := range []llm.PhaseReport{rep.DAPT, rep.SFT} {
			fmt.Printf("%s: %d samples, %d tokens, held-out CE curve (nats/token):\n  ",
				ph.Phase, ph.Samples, ph.Tokens)
			for _, l := range ph.LossCurve {
				fmt.Printf("%.3f ", l)
			}
			fmt.Printf("\n  improved: %v\n", ph.Improved())
		}
		fmt.Printf("vocabulary: %d word pieces\n", rep.Vocab)
		fmt.Printf("model: %s\n", model.LM())
	}
}
