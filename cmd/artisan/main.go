// Command artisan designs a three-stage operational amplifier from a
// specification, reproducing the paper's end-to-end workflow (Fig. 2):
// architecture selection, the multi-agent CoT design flow, verification,
// modification, and gm/Id transistor mapping.
//
// Usage:
//
//	artisan -group G-1                      # design for a Table 2 group
//	artisan -prompt "gain >85dB, PM >55°, GBW >0.7MHz, Power <250uW, CL=10pF"
//	artisan -group G-5 -transcript          # show the full chat log
//	artisan -group G-3 -width 3 -tune       # wide ToT + BO tuning
//	artisan -group G-1 -trace               # print the span tree of the run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"artisan/internal/core"
	"artisan/internal/experiment"
	"artisan/internal/llm"
	"artisan/internal/spec"
	"artisan/internal/telemetry"
)

func main() {
	var (
		group      = flag.String("group", "", "Table 2 spec group (G-1 … G-5)")
		prompt     = flag.String("prompt", "", "natural-language spec request")
		seed       = flag.Int64("seed", 1, "random seed for the Artisan-LLM")
		temp       = flag.Float64("temp", 0, "LLM temperature (0 = deterministic expert)")
		width      = flag.Int("width", 1, "ToT tree width (architecture candidates verified)")
		mods       = flag.Int("mods", 1, "maximum modification rounds")
		tune       = flag.Bool("tune", false, "enable BO parameter tuning on failure")
		transcript = flag.Bool("transcript", false, "print the full chat log")
		transistor = flag.Bool("transistor", false, "print the transistor-level netlist")
		model      = flag.String("model", "artisan", "designer model: artisan | gpt4 | llama2")
		yield_     = flag.Bool("yield", false, "run Monte-Carlo mismatch yield on the result")
		corners    = flag.Bool("corners", false, "run the five-corner PVT sweep on the result")
		trace      = flag.Bool("trace", false, "print the telemetry span tree of the design run")
	)
	flag.Parse()

	var sp spec.Spec
	var err error
	switch {
	case *group != "":
		sp, err = spec.Group(*group)
	case *prompt != "":
		sp, err = core.ParsePrompt(*prompt)
	default:
		err = fmt.Errorf("provide -group or -prompt")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "artisan:", err)
		os.Exit(2)
	}

	var designer llm.DesignerModel
	switch *model {
	case "artisan":
		designer = llm.NewDomainModel(*seed, *temp)
	case "gpt4":
		designer = llm.NewGPT4Model()
	case "llama2":
		designer = llm.NewLlama2Model()
	default:
		fmt.Fprintln(os.Stderr, "artisan: unknown model", *model)
		os.Exit(2)
	}

	a := core.NewWithModel(designer)
	a.Opts.TreeWidth = *width
	a.Opts.MaxModifications = *mods
	a.Opts.Tune = *tune

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var tracer *telemetry.Tracer
	if *trace {
		tracer = telemetry.NewTracer(1)
		ctx = telemetry.WithTracer(ctx, tracer)
	}

	fmt.Println("Spec:", sp)
	out, err := a.Design(ctx, sp)
	if tracer != nil {
		// The root span ("core.design") covers the whole workflow; its
		// children are the agent session, tool invocations, MNA solves,
		// and the gm/Id mapping.
		for _, root := range tracer.Traces() {
			fmt.Println("\nTrace:")
			fmt.Print(root.Tree())
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "artisan:", err)
		os.Exit(1)
	}
	if *transcript {
		fmt.Println(out.Transcript.Chat())
	}
	if out.Success {
		fmt.Printf("SUCCESS with %s: %s\n", out.Arch, experiment.FormatReport(sp, out.Report))
		fmt.Printf("session: %d QA steps, %d simulations\n", out.QACount, out.SimCount)
		fmt.Println("\nBehavioral netlist:")
		fmt.Print(out.Netlist)
		if *transistor && out.Transistor != nil {
			fmt.Println("\nTransistor-level netlist (gm/Id mapping):")
			fmt.Print(out.Transistor)
		}
		if *yield_ {
			res, err := experiment.MonteCarloYield(out.Netlist, sp, experiment.DefaultYieldOpts(*seed))
			if err != nil {
				fmt.Fprintln(os.Stderr, "artisan:", err)
				os.Exit(1)
			}
			fmt.Printf("\nMonte-Carlo mismatch (5%%, 200 samples): %s\n", res)
			for metric, n := range res.Violations {
				fmt.Printf("  failures on %s: %d\n", metric, n)
			}
		}
		if *corners {
			rep, err := experiment.RunCorners(out.Topology, sp, nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, "artisan:", err)
				os.Exit(1)
			}
			fmt.Println("\nPVT corners:")
			fmt.Print(rep)
		}
		return
	}
	fmt.Printf("FAILED (%s): %s\n", designer.Name(), out.FailReason)
	if !*transcript {
		fmt.Println("(rerun with -transcript to see the session log)")
	}
	os.Exit(1)
}
