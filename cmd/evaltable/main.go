// Command evaltable regenerates the paper's evaluation artifacts: the
// Table 3 method comparison and the Fig. 6/Fig. 7 design examples and
// chat logs.
//
// Usage:
//
//	evaltable                       # full Table 3 (10 trials, budget 250)
//	evaltable -trials 3 -budget 80  # quick run
//	evaltable -workers 8            # parallel trials (identical results, less wall-clock)
//	evaltable -phases               # measured per-phase time breakdown from trace spans
//	evaltable -fig7                 # chat logs of Artisan/GPT-4/Llama2
//	evaltable -fig6                 # the example circuits
//	evaltable -backends             # head-to-head sizing-backend comparison
//	evaltable -backends -out b.json # …and record BENCH-style JSON entries
//	evaltable -genbench             # generative benchmark: grounded-pass-rate × rubric × FoM
//	evaltable -genbench -out g.json # …and record BENCH-style JSON entries
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"artisan/internal/agents"
	"artisan/internal/core"
	"artisan/internal/experiment"
	"artisan/internal/llm"
	"artisan/internal/opt"
	"artisan/internal/spec"
)

func main() {
	var (
		trials   = flag.Int("trials", 10, "trials per cell")
		budget   = flag.Int("budget", 250, "baseline simulation budget")
		seed     = flag.Int64("seed", 42, "random seed")
		groups   = flag.String("groups", "", "comma-separated group subset (default all)")
		methods  = flag.String("methods", "", "comma-separated method subset (default all)")
		workers  = flag.Int("workers", 1, "fan trials out over N workers (results identical to serial)")
		phases   = flag.Bool("phases", false, "print the measured per-phase time breakdown after the table")
		fig6     = flag.Bool("fig6", false, "print the Fig. 6 example circuits instead")
		fig7     = flag.Bool("fig7", false, "print the Fig. 7 chat logs instead")
		backends = flag.Bool("backends", false, "run the head-to-head sizing-backend comparison instead of Table 3")
		blist    = flag.String("backend-list", "", "comma-separated backend subset for -backends (default all registered)")
		detune   = flag.Float64("detune", 0.8, "-backends: log-normal sigma of the starting-point detuning")
		genbench = flag.Bool("genbench", false, "run the generative benchmark harness instead of Table 3")
		dlist    = flag.String("designers", "", "comma-separated designer subset for -genbench (default full roster)")
		outFile  = flag.String("out", "", "-backends/-genbench: write BENCH-style JSON entries to this file")
	)
	flag.Parse()

	if *fig7 {
		printFig7()
		return
	}
	if *fig6 {
		printFig6(*seed, *budget)
		return
	}
	if *genbench {
		gcfg := experiment.DefaultGenBenchConfig(*seed)
		gcfg.Workers = *workers
		if *trials != 10 {
			// -trials keeps its Table 3 default of 10; the genbench default
			// of 12 tasks applies unless the flag was set explicitly.
			gcfg.Trials = *trials
		}
		if *dlist != "" {
			gcfg.Designers = strings.Split(*dlist, ",")
		}
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		table, err := experiment.RunGenBenchContext(ctx, gcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evaltable:", err)
			os.Exit(1)
		}
		fmt.Print(renderGenBenchReport(table))
		if *outFile != "" {
			if err := writeGenBench(*outFile, table); err != nil {
				fmt.Fprintln(os.Stderr, "evaltable:", err)
				os.Exit(1)
			}
			fmt.Printf("evaltable: wrote %s\n", *outFile)
		}
		return
	}
	if *backends {
		bcfg := experiment.DefaultBackendConfig(*seed)
		bcfg.Trials = *trials
		bcfg.Budget = *budget
		bcfg.Workers = *workers
		bcfg.Detune = *detune
		if *groups != "" {
			bcfg.Groups = strings.Split(*groups, ",")
		}
		if *blist != "" {
			bcfg.Backends = strings.Split(*blist, ",")
		}
		if *trials == 10 && *budget == 250 {
			// -backends has its own defaults: the Table 3 budget is per-run
			// simulator spend here, and three detuned starts per cell keep
			// the full 4-backend × 5-group sweep tractable.
			bcfg.Trials, bcfg.Budget = 3, 120
		}
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		table, err := experiment.RunBackendsContext(ctx, bcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evaltable:", err)
			os.Exit(1)
		}
		fmt.Print(renderBackendReport(table))
		if *outFile != "" {
			if err := writeBackendBench(*outFile, table); err != nil {
				fmt.Fprintln(os.Stderr, "evaltable:", err)
				os.Exit(1)
			}
			fmt.Printf("evaltable: wrote %s\n", *outFile)
		}
		return
	}

	cfg := experiment.DefaultConfig(*seed)
	cfg.Trials = *trials
	cfg.Budget = *budget
	cfg.Workers = *workers
	if *groups != "" {
		cfg.Groups = strings.Split(*groups, ",")
	}
	if *methods != "" {
		cfg.Methods = nil
		for _, m := range strings.Split(*methods, ",") {
			cfg.Methods = append(cfg.Methods, experiment.Method(m))
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	t3, err := experiment.RunContext(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaltable:", err)
		os.Exit(1)
	}
	fmt.Print(renderReport(t3, *phases, cfg.Groups))
}

// renderReport builds the full evaltable report: the rendered Table 3,
// the optional measured phase breakdown, and the per-group speedup
// summary. Factored from main so the golden regression test covers the
// exact bytes the command prints.
func renderReport(t3 *experiment.Table3, phases bool, groups []string) string {
	var b strings.Builder
	b.WriteString(t3.String())
	b.WriteString("\n")
	if phases {
		b.WriteString(t3.PhaseBreakdown())
		b.WriteString("\n")
	}
	if len(groups) == 0 {
		groups = []string{"G-1", "G-2", "G-3", "G-4", "G-5"}
	}
	for _, g := range groups {
		bo := t3.Speedup(experiment.MethodBOBO, g)
		rl := t3.Speedup(experiment.MethodRLBO, g)
		if bo > 0 || rl > 0 {
			fmt.Fprintf(&b, "%s: Artisan speedup %.1f× vs BOBO, %.1f× vs RLBO\n", g, bo, rl)
		}
	}
	return b.String()
}

// renderBackendReport renders the backend comparison table plus the
// per-group evaluation-advantage summary of the analytic backends over
// plain BO. Factored from main so the golden test covers the exact
// bytes the command prints.
func renderBackendReport(table *experiment.BackendTable) string {
	var b strings.Builder
	b.WriteString(table.String())
	b.WriteString("\n")
	groups := table.Cfg.Groups
	if len(groups) == 0 {
		groups = []string{"G-1", "G-2", "G-3", "G-4", "G-5"}
	}
	for _, g := range groups {
		wb := table.EvalAdvantage("whitebox", "bo", g)
		hy := table.EvalAdvantage("hybrid", "bo", g)
		if wb > 0 || hy > 0 {
			fmt.Fprintf(&b, "%s: evals-to-spec advantage over bo: whitebox %.1f×, hybrid %.1f×\n", g, wb, hy)
		}
	}
	return b.String()
}

// renderGenBenchReport renders the generative benchmark table plus a
// one-line verdict per designer. Factored from main so the golden test
// covers the exact bytes the command prints.
func renderGenBenchReport(table *experiment.GenBenchTable) string {
	var b strings.Builder
	b.WriteString(table.String())
	b.WriteString("\n")
	for _, r := range table.Rows {
		verdict := "FAILS grounding"
		if r.GroundPass*100 >= r.Trials*95 {
			verdict = "grounded"
			if r.Credited == 0 {
				verdict = "grounded but uncredited (rubric)"
			}
		}
		fmt.Fprintf(&b, "%s: %s (citations %d/%d grounded, mean rubric %.2f)\n",
			r.Designer, verdict, r.Grounded, r.Citations, r.Rubric)
	}
	return b.String()
}

// genBenchEntry is one BENCH-style JSON record of the generative
// benchmark. The names deliberately do not match the bench.sh hot-path
// regex, so merging them into a BENCH file never trips the perf gate.
type genBenchEntry struct {
	Name       string  `json:"name"`
	Designer   string  `json:"designer"`
	Trials     int     `json:"trials"`
	GroundPass int     `json:"ground_pass"`
	Citations  int     `json:"citations"`
	Grounded   int     `json:"grounded"`
	Findings   int     `json:"findings"`
	Rubric     float64 `json:"rubric"`
	Credited   int     `json:"credited"`
	FoM        float64 `json:"fom"`
}

// writeGenBench records the benchmark rows as a JSON array in the BENCH
// file layout (mergeable by scripts/bench.sh).
func writeGenBench(path string, table *experiment.GenBenchTable) error {
	entries := make([]genBenchEntry, 0, len(table.Rows))
	for _, r := range table.Rows {
		entries = append(entries, genBenchEntry{
			Name:     "GenBench_" + r.Designer,
			Designer: r.Designer, Trials: r.Trials,
			GroundPass: r.GroundPass, Citations: r.Citations, Grounded: r.Grounded,
			Findings: r.Findings, Rubric: r.Rubric, Credited: r.Credited, FoM: r.FoM,
		})
	}
	blob, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// backendBenchEntry is one BENCH-style JSON record of the comparison.
// The names deliberately do not match the bench.sh hot-path regex, so
// merging them into a BENCH file never trips the ns/op perf gate.
type backendBenchEntry struct {
	Name           string  `json:"name"`
	Backend        string  `json:"backend"`
	Group          string  `json:"group"`
	Trials         int     `json:"trials"`
	Successes      int     `json:"successes"`
	Degraded       int     `json:"degraded"`
	FoM            float64 `json:"fom"`
	Evals          float64 `json:"evals"`
	EvalsToSuccess float64 `json:"evals_to_success"`
}

// writeBackendBench records the comparison cells as a JSON array in the
// BENCH file layout (mergeable by scripts/bench.sh).
func writeBackendBench(path string, table *experiment.BackendTable) error {
	entries := make([]backendBenchEntry, 0, len(table.Cells))
	for _, c := range table.Cells {
		entries = append(entries, backendBenchEntry{
			Name:    fmt.Sprintf("BackendSizing_%s_%s", c.Backend, c.Group),
			Backend: c.Backend, Group: c.Group,
			Trials: c.Trials, Successes: c.Successes, Degraded: c.Degraded,
			FoM: c.FoM, Evals: c.Evals, EvalsToSuccess: c.EvalsToOK,
		})
	}
	blob, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// printFig7 reproduces the chat-log comparison of Fig. 7: Artisan's full
// interpretable session on G-1 (including the CL = 1 nF follow-up) next
// to the single-step answers of GPT-4 and Llama2.
func printFig7() {
	g1, _ := spec.Group("G-1")
	g5, _ := spec.Group("G-5")

	a := core.NewWithModel(llm.NewDomainModel(1, 0))
	out, err := a.Design(context.Background(), g1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaltable:", err)
		os.Exit(1)
	}
	fmt.Println("############ A chat log example of Artisan (G-1) ############")
	fmt.Println(out.Transcript.Chat())

	out5, err := a.Design(context.Background(), g5)
	if err == nil {
		fmt.Println("######## Artisan follow-up: the CL = 1 nF modification ########")
		fmt.Println(out5.Transcript.Chat())
	}

	for _, m := range []llm.Model{llm.NewGPT4Model(), llm.NewLlama2Model()} {
		fmt.Printf("############ A chat log example of %s ############\n", m.Name())
		for _, q := range []string{
			"I want to design a behavioral level three-stage opamp meeting the following specs. Please recommend an architecture.",
			"The NMC design flow includes zero-pole analysis. Please analyze the zero-pole distributions.",
			"When CL=1nF, the NMC opamp suffers. How to modify the design?",
		} {
			fmt.Println("Q:", q)
			ans, err := m.Generate(q)
			if err != nil {
				ans = "(" + err.Error() + ")"
			}
			fmt.Println("A:", ans)
		}
		fmt.Println()
	}
}

// printFig6 reproduces the design-example comparison of Fig. 6: the
// best circuits BOBO and RLBO find, and Artisan's behavioral plus
// transistor-level result.
func printFig6(seed int64, budget int) {
	g1, _ := spec.Group("G-1")

	fmt.Println("=== Fig. 6(a): BOBO's best circuit on G-1 ===")
	if r, err := opt.BOBO(g1, budget, seed); err == nil && r.Best != nil {
		fmt.Println(r.Best.Summary())
		fmt.Printf("  %s (success=%v)\n\n", experiment.FormatReport(g1, r.Report), r.Success)
	}
	fmt.Println("=== Fig. 6(b): RLBO's best circuit on G-1 ===")
	if r, err := opt.RLBO(g1, budget, seed); err == nil && r.Best != nil {
		fmt.Println(r.Best.Summary())
		fmt.Printf("  %s (success=%v)\n\n", experiment.FormatReport(g1, r.Report), r.Success)
	}

	a := core.NewWithModel(llm.NewDomainModel(seed, 0))
	a.Opts = agents.DefaultOptions()
	out, err := a.Design(context.Background(), g1)
	if err != nil || !out.Success {
		fmt.Fprintln(os.Stderr, "evaltable: Artisan example failed")
		os.Exit(1)
	}
	fmt.Println("=== Fig. 6(c): Artisan's behavioral-level circuit on G-1 ===")
	fmt.Println(out.Topology.Summary())
	fmt.Print(out.Netlist)
	fmt.Printf("  %s\n\n", experiment.FormatReport(g1, out.Report))
	if out.Transistor != nil {
		fmt.Println("=== Fig. 6(d): Artisan's transistor-level schematic (gm/Id) ===")
		fmt.Print(out.Transistor)
	}
}
