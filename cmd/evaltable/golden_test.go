package main

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"artisan/internal/experiment"
)

// Regenerate the goldens after an intentional output change with
//
//	go test ./cmd/evaltable -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// goldenCfg is a small but representative slice of Table 3: a black-box
// optimizer, an off-the-shelf LLM baseline (all-fail row), and Artisan,
// on the paper's first and last spec groups. Everything it renders —
// metrics, modeled times, speedups — is a deterministic function of the
// seed, so the exact bytes are a regression surface.
func goldenCfg() experiment.Config {
	cfg := experiment.DefaultConfig(42)
	cfg.Trials = 2
	cfg.Budget = 60
	cfg.Groups = []string{"G-1", "G-5"}
	cfg.Methods = []experiment.Method{
		experiment.MethodBOBO, experiment.MethodGPT4, experiment.MethodArtisan,
	}
	return cfg
}

func TestEvaltableGolden(t *testing.T) {
	t3, err := experiment.Run(goldenCfg())
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "table3.golden", renderReport(t3, false, []string{"G-1", "G-5"}))
	compareGolden(t, "phases.golden", normalizePhases(t3.PhaseBreakdown()))
}

// The parallel harness must render the identical report (its own package
// asserts cell equality; this pins the full command output too).
func TestEvaltableGoldenParallel(t *testing.T) {
	cfg := goldenCfg()
	cfg.Workers = 4
	t3, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "table3.golden", renderReport(t3, false, []string{"G-1", "G-5"}))
}

// backendGoldenCfg pins the -backends mode on the first and last spec
// groups: every number in the table is a deterministic function of the
// seed, so the exact bytes are a regression surface for all four
// registered backends at once.
func backendGoldenCfg() experiment.BackendConfig {
	cfg := experiment.DefaultBackendConfig(42)
	cfg.Trials = 2
	cfg.Budget = 60
	cfg.Groups = []string{"G-1", "G-5"}
	return cfg
}

func TestBackendsGolden(t *testing.T) {
	table, err := experiment.RunBackends(backendGoldenCfg())
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "backends.golden", renderBackendReport(table))
}

// The parallel backend sweep must render the identical report, and a
// repeated run must reproduce it byte for byte.
func TestBackendsGoldenDeterministic(t *testing.T) {
	cfg := backendGoldenCfg()
	cfg.Workers = 4
	table, err := experiment.RunBackends(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "backends.golden", renderBackendReport(table))
	again, err := experiment.RunBackends(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if renderBackendReport(table) != renderBackendReport(again) {
		t.Error("repeated -backends run is nondeterministic")
	}
}

// genBenchGoldenCfg pins the -genbench mode: eight generated tasks over
// the full reference-designer roster. Topologies, specs, transcripts,
// and scores are all pure functions of the seed, so the exact bytes are
// a regression surface for the generator, the rubric, and the
// groundedness verifier at once.
func genBenchGoldenCfg() experiment.GenBenchConfig {
	cfg := experiment.DefaultGenBenchConfig(42)
	cfg.Trials = 8
	return cfg
}

func TestGenBenchGolden(t *testing.T) {
	table, err := experiment.RunGenBench(genBenchGoldenCfg())
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "genbench.golden", renderGenBenchReport(table))
}

// The parallel genbench sweep must render the identical report, and a
// repeated run must reproduce it byte for byte.
func TestGenBenchGoldenDeterministic(t *testing.T) {
	cfg := genBenchGoldenCfg()
	cfg.Workers = 4
	table, err := experiment.RunGenBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "genbench.golden", renderGenBenchReport(table))
	again, err := experiment.RunGenBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if renderGenBenchReport(table) != renderGenBenchReport(again) {
		t.Error("repeated -genbench run is nondeterministic")
	}
}

func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create it): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// normalizePhases strips the nondeterminism out of the measured phase
// breakdown: durations are wall-clock observations and rows order their
// phases by share of it, so durations become "X" and phase tokens are
// re-sorted by name. What remains — which cells were traced and which
// phases each recorded — is stable and worth pinning.
func normalizePhases(s string) string {
	var out []string
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		if !strings.Contains(line, "=") {
			out = append(out, line)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			out = append(out, line)
			continue
		}
		toks := fields[2:]
		for i, tok := range toks {
			if name, _, ok := strings.Cut(tok, "="); ok {
				toks[i] = name + "=X"
			}
		}
		sort.Strings(toks)
		out = append(out, fields[0]+" "+fields[1]+" "+strings.Join(toks, " "))
	}
	return strings.Join(out, "\n") + "\n"
}
