// Command artisan-server exposes the Artisan framework over HTTP/JSON —
// the publicly accessible form promised by the paper's abstract.
//
//	artisan-server -addr :8080
//
// Endpoints:
//
//	GET  /healthz        liveness
//	GET  /groups         the Table 2 spec groups
//	GET  /architectures  the knowledge base's architecture cards
//	POST /design         {"group":"G-1"} or {"prompt":"gain >85dB, …"}
//	POST /simulate       {"netlist":"V1 in 0 1\n…"}
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"artisan/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:         *addr,
		Handler:      server.New(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	log.Printf("artisan-server listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
