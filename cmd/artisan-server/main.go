// Command artisan-server exposes the Artisan framework over HTTP/JSON —
// the publicly accessible form promised by the paper's abstract.
//
//	artisan-server -addr :8080 -workers 8 -queue 64
//
// Endpoints:
//
//	GET    /healthz        liveness + pool/cache/resilience counters
//	GET    /stats          resilience counters, breaker state, chaos config
//	GET    /metrics        Prometheus text exposition of the same state
//	GET    /traces         recent design-run span trees as JSON
//	GET    /groups         the Table 2 spec groups
//	GET    /architectures  the knowledge base's architecture cards
//	POST   /design         {"group":"G-1"} or {"prompt":"gain >85dB, …"} (waits)
//	POST   /design/batch   {"items":[{"group":"G-1"},…]} → NDJSON stream, one
//	                       line per item in completion order + a summary line;
//	                       duplicate items coalesce to one run (-max-batch caps
//	                       the item count)
//	POST   /simulate       {"netlist":"V1 in 0 1\n…"}
//	POST   /simulate/batch {"items":[{"netlist":…},…]} → NDJSON, same contract
//	POST   /jobs           enqueue a design asynchronously → 202 + id
//	GET    /jobs           list jobs with status counts
//	GET    /jobs/{id}      poll one job (result embedded when done)
//	DELETE /jobs/{id}      cancel a queued or running job
//
// Every response carries an X-Request-ID (client-provided or generated);
// -access-log prints one structured line per request keyed on it, and
// -debug-addr serves net/http/pprof plus a /metrics mirror on a separate
// listener that should stay private.
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// queued and running design jobs before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"artisan/internal/backend"
	"artisan/internal/server"
	"artisan/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "design worker pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "pending job queue bound")
		cacheSize = flag.Int("cache", 128, "design result cache entries")
		maxBatch  = flag.Int("max-batch", 64, "max items per /design/batch or /simulate/batch request")
		jobTime   = flag.Duration("job-timeout", 0, "per-job deadline (0 = none)")
		drainTime = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain budget")
		retryMax  = flag.Int("retry-max", 3, "retry attempts per designer/simulator call")
		breakThr  = flag.Int("breaker-threshold", 5, "consecutive failures that open the circuit breaker")
		toolTime  = flag.Duration("tool-timeout", 0, "per-attempt tool deadline (0 = none)")
		faultRate = flag.Float64("fault-rate", 0, "chaos mode: probability each designer/simulator call fails")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and /metrics on this private address (empty = off)")
		accessLog = flag.Bool("access-log", false, "log one structured line per request to stderr")
		nodeID    = flag.String("node-id", "", "fleet node id: prefixes job ids and is reported on /healthz for the router")
		dataDir   = flag.String("data-dir", "", "persistent job store directory (empty = in-memory only)")
		storeSync = flag.Bool("store-sync", false, "fsync every journal append (machine-crash durability)")
		tenRate   = flag.Float64("tenant-rate", 0, "per-tenant admitted design items/sec (0 = admission off)")
		tenBurst  = flag.Float64("tenant-burst", 0, "per-tenant token-bucket burst (default 2x rate)")
		modelLat  = flag.Duration("model-latency", 0, "modeled remote designer-LLM latency per design run (0 = off)")
		sizingBk  = flag.String("sizing-backend", "",
			"default sizing backend for tuned designs, one of "+strings.Join(backend.Names(), "|")+" (empty = "+backend.DefaultName+")")
	)
	flag.Parse()

	if *faultRate < 0 || *faultRate > 1 {
		log.Fatalf("-fault-rate %g out of [0,1]", *faultRate)
	}
	var logger *slog.Logger
	if *accessLog {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	svc, err := server.NewServer(server.Options{
		Workers: *workers, Queue: *queue, CacheSize: *cacheSize, JobTimeout: *jobTime,
		MaxBatch: *maxBatch,
		RetryMax: *retryMax, BreakerThreshold: *breakThr,
		ToolTimeout: *toolTime, FaultRate: *faultRate,
		AccessLog: logger,
		NodeID:    *nodeID, DataDir: *dataDir, StoreSync: *storeSync,
		TenantRate: *tenRate, TenantBurst: *tenBurst,
		ModelLatency:  *modelLat,
		SizingBackend: *sizingBk,
	})
	if err != nil {
		log.Fatal(err)
	}
	if p := svc.Persist(); p != nil {
		// Surface replay integrity at startup: quarantined corrupt records
		// are an operator signal (see journal.quarantine.jsonl), not a
		// crash, and they are also counted on /stats and /metrics.
		st := p.Store().Stats()
		if st.Journal.Corrupt > 0 || st.Journal.TornTail {
			log.Printf("journal replay: %d records (%d legacy), %d corrupt quarantined, torn tail %v",
				st.Journal.Records, st.Journal.Legacy, st.Journal.Corrupt, st.Journal.TornTail)
		}
	}
	srv := &http.Server{
		Addr:         *addr,
		Handler:      svc,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("artisan-server listening on %s", *addr)
	if *debugAddr != "" {
		telemetry.ServeDebug(*debugAddr, svc.Registry(), errc)
		log.Printf("debug server (pprof + /metrics) on %s", *debugAddr)
	}

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal behaviour: a second ^C kills us
		// Flip /healthz to 503 immediately: the router's next health probe
		// pulls this node from rotation before the queue closes, so no
		// routed request ever sees a mid-drain submit error.
		svc.StartDraining()
		log.Printf("shutdown: draining connections and jobs (budget %s)", *drainTime)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTime)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		log.Printf("job drain: %v", err)
	}
	log.Printf("artisan-server stopped")
}
