// Command loadgen drives the Artisan design service with a deterministic,
// duplicate-heavy request mix and reports throughput and latency
// quantiles — the benchmark behind the batch-serving layer's acceptance
// bar. In compare mode it replays the same workload twice, item-by-item
// through POST /design and batched through POST /design/batch, each
// against a fresh in-process server (equal cache warmth), and reports the
// batch path's speedup plus the coalesce hits it scored on /metrics.
//
// Usage:
//
//	loadgen                        # compare mode, built-in server
//	loadgen -mode batch -n 500 -dup 0.8 -batch 64
//	loadgen -mode fleet -nodes 2   # 1 node vs N nodes behind the router
//	loadgen -profile soak          # long duplicate-heavy fleet run
//	loadgen -profile genbench      # cache-hostile generated-topology sim mix
//	loadgen -url http://host:8080  # drive a running server instead
//	loadgen -out loadgen.json      # write BENCH-style JSON entries
//
// Fleet mode stands up -nodes in-process worker servers (each with
// -node-workers pool goroutines and -model-latency of modeled remote
// designer-LLM latency) behind the consistent-hashing router, replays
// the mix through the router, and reports the speedup over one
// identically-configured node.
//
// The workload is fully seeded: the same -seed, -n, -dup, and -groups
// produce the same request sequence, so runs are comparable across PRs.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"artisan/internal/backend"
	"artisan/internal/cluster"
	"artisan/internal/server"
	"artisan/internal/spec"
	"artisan/internal/topology"
)

type config struct {
	mode        string
	n           int
	batch       int
	dup         float64
	concurrency int
	seed        int64
	groups      []string
	url         string
	out         string
	workers     int
	repeat      int
	// Fleet mode: nodes in-process worker servers behind a cluster.Router,
	// each with nodeWorkers pool goroutines and modelLatency of modeled
	// remote-LLM latency per design run (real LLM serving is latency-
	// bound, so fleet throughput scales with total in-flight workers even
	// on a small host). Compared against one identically-sized node.
	nodes        int
	nodeWorkers  int
	modelLatency time.Duration
	profile      string
	// backend, when set, turns the mix into tuned design requests routed
	// through the named sizing backend — the load profile of a fleet
	// serving optimization-heavy traffic.
	backend string
}

// workItem is one design request of the generated mix.
type workItem struct {
	Group   string `json:"group"`
	Seed    int64  `json:"seed"`
	Tune    bool   `json:"tune,omitempty"`
	Backend string `json:"backend,omitempty"`
}

// phaseResult is one BENCH-style JSON entry. The names deliberately do
// not match the bench.sh hot-path regex, so merging these entries into a
// BENCH file never trips the ns/op perf gate.
type phaseResult struct {
	Name         string  `json:"name"`
	Mode         string  `json:"mode"`
	Items        int     `json:"items"`
	UniqueItems  int     `json:"unique_items"`
	DupRatio     float64 `json:"dup_ratio"`
	Concurrency  int     `json:"concurrency"`
	Nodes        int     `json:"nodes,omitempty"`
	BatchSize    int     `json:"batch_size,omitempty"`
	Errors       int     `json:"errors"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	ItemsPerSec  float64 `json:"items_per_sec"`
	P50MS        float64 `json:"p50_ms"`
	P90MS        float64 `json:"p90_ms"`
	P99MS        float64 `json:"p99_ms"`
	CoalesceHits float64 `json:"coalesce_hits"`
	CacheHits    float64 `json:"cache_hits"`
	// SpeedupVsSingle is set on the batch entry of a compare run.
	SpeedupVsSingle float64 `json:"speedup_vs_single,omitempty"`
	// SpeedupVsOneNode is set on the fleet entry of a fleet run: N-node
	// throughput over the identically-configured single node's.
	SpeedupVsOneNode float64 `json:"speedup_vs_one_node,omitempty"`
}

func main() {
	var (
		mode        = flag.String("mode", "compare", "single | batch | compare")
		n           = flag.Int("n", 200, "total design requests in the mix")
		batch       = flag.Int("batch", 32, "items per /design/batch request")
		dup         = flag.Float64("dup", 0.5, "duplicate ratio of the mix, 0..1")
		concurrency = flag.Int("concurrency", 8, "client goroutines (single) / batches in flight (batch)")
		seed        = flag.Int64("seed", 1, "workload seed")
		groupsFlag  = flag.String("groups", "", "comma-separated spec groups (default: all)")
		url         = flag.String("url", "", "base URL of a running server (default: in-process)")
		out         = flag.String("out", "", "write results as a JSON array to this file")
		workers     = flag.Int("workers", 0, "in-process server pool size (default GOMAXPROCS)")
		repeat      = flag.Int("repeat", 3, "repetitions per phase; the best-throughput one is reported")
		nodes       = flag.Int("nodes", 2, "fleet mode: worker nodes behind the router")
		nodeWorkers = flag.Int("node-workers", 4, "fleet mode: worker pool size per node")
		modelLat    = flag.Duration("model-latency", 100*time.Millisecond, "fleet mode: modeled remote designer-LLM latency per design run")
		profile     = flag.String("profile", "", "workload preset: '', 'soak' (long duplicate-heavy fleet run), or 'genbench' (cache-hostile generated-topology simulate mix)")
		backendFlag = flag.String("backend", "",
			"route the mix as tuned designs through this sizing backend, one of "+strings.Join(backend.Names(), "|")+" (empty = untuned mix)")
	)
	flag.Parse()
	cfg := config{
		mode: *mode, n: *n, batch: *batch, dup: *dup, concurrency: *concurrency,
		seed: *seed, url: *url, out: *out, workers: *workers, repeat: *repeat,
		nodes: *nodes, nodeWorkers: *nodeWorkers, modelLatency: *modelLat,
		profile: *profile, backend: *backendFlag,
	}
	if *groupsFlag != "" {
		cfg.groups = strings.Split(*groupsFlag, ",")
	}
	if cfg.profile == "genbench" {
		// Genbench: every request carries a freshly generated topology's
		// netlist, so the coalescing map and result cache have nothing to
		// match — the worst-case (cache-hostile) serving profile the
		// generative benchmark harness produces.
		cfg.mode = "genbench"
	}
	if cfg.profile == "soak" {
		// Soak: a long, duplicate-heavy fleet run at high client fan-in —
		// the sustained-traffic profile behind the fleet BENCH entries.
		cfg.mode = "fleet"
		if cfg.n < 2000 {
			cfg.n = 2000
		}
		if cfg.dup < 0.9 {
			cfg.dup = 0.9
		}
		if cfg.concurrency < 32 {
			cfg.concurrency = 32
		}
		cfg.repeat = 1
	}
	results, err := run(cfg, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if cfg.out != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(cfg.out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "loadgen: wrote %s\n", cfg.out)
	}
}

// run executes the configured phases and returns their BENCH entries.
func run(cfg config, w io.Writer) ([]phaseResult, error) {
	if cfg.n < 1 {
		return nil, fmt.Errorf("-n must be >= 1")
	}
	if cfg.batch < 1 {
		return nil, fmt.Errorf("-batch must be >= 1")
	}
	if cfg.concurrency < 1 {
		cfg.concurrency = 1
	}
	if cfg.dup < 0 || cfg.dup > 1 {
		return nil, fmt.Errorf("-dup must be in [0,1]")
	}
	if cfg.backend != "" {
		if _, err := backend.Get(cfg.backend); err != nil {
			return nil, err
		}
	}
	if len(cfg.groups) == 0 {
		for _, g := range spec.Groups() {
			cfg.groups = append(cfg.groups, g.Name)
		}
	} else {
		for _, name := range cfg.groups {
			if _, err := spec.Group(name); err != nil {
				return nil, err
			}
		}
	}
	if cfg.mode == "genbench" {
		return runGenbench(cfg, w)
	}
	items, unique := makeWorkload(cfg)
	fmt.Fprintf(w, "loadgen: %d items (%d unique, dup ratio %.2f) over groups %s, seed %d\n",
		len(items), unique, cfg.dup, strings.Join(cfg.groups, ","), cfg.seed)

	if cfg.repeat < 1 {
		cfg.repeat = 1
	}

	var results []phaseResult
	// onePhase measures a single repetition against a fresh target (equal,
	// cold cache state every time).
	onePhase := func(mode string) (phaseResult, error) {
		base, shutdown := cfg.target()
		defer shutdown()
		var (
			res phaseResult
			err error
		)
		switch mode {
		case "single":
			res, err = runSingle(base, items, cfg)
		case "batch":
			res, err = runBatch(base, items, cfg)
		default:
			return phaseResult{}, fmt.Errorf("unknown mode %q (want single, batch, or compare)", mode)
		}
		if err != nil {
			return phaseResult{}, err
		}
		res.UniqueItems = unique
		res.DupRatio = cfg.dup
		res.CoalesceHits = scrapeCounter(base, "artisan_jobs_coalesce_hits_total")
		res.CacheHits = scrapeCounter(base, "artisan_jobs_cache_hits_total")
		return res, nil
	}
	// runPhase repeats the phase and keeps the best-throughput repetition —
	// standard benchmark practice to cut scheduler/GC noise, which on small
	// hosts easily exceeds the effect under measurement.
	runPhase := func(mode string) (phaseResult, error) {
		var best phaseResult
		for rep := 0; rep < cfg.repeat; rep++ {
			res, err := onePhase(mode)
			if err != nil {
				return phaseResult{}, err
			}
			if rep == 0 || res.ItemsPerSec > best.ItemsPerSec {
				best = res
			}
		}
		fmt.Fprintln(w, best.String())
		return best, nil
	}

	switch cfg.mode {
	case "single", "batch":
		res, err := runPhase(cfg.mode)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	case "compare":
		single, err := runPhase("single")
		if err != nil {
			return nil, err
		}
		batch, err := runPhase("batch")
		if err != nil {
			return nil, err
		}
		if batch.ItemsPerSec > 0 && single.ItemsPerSec > 0 {
			batch.SpeedupVsSingle = batch.ItemsPerSec / single.ItemsPerSec
		}
		fmt.Fprintf(w, "loadgen: batch throughput %.2fx single (%0.f vs %0.f items/s), coalesce hits %g\n",
			batch.SpeedupVsSingle, batch.ItemsPerSec, single.ItemsPerSec, batch.CoalesceHits)
		results = append(results, single, batch)
	case "fleet":
		return runFleet(cfg, items, unique, w)
	default:
		return nil, fmt.Errorf("unknown -mode %q (want single, batch, compare, or fleet)", cfg.mode)
	}
	return results, nil
}

// runFleet is the multi-node compare: the same workload replayed
// item-by-item through (a) one worker node and (b) cfg.nodes identical
// nodes behind a cluster.Router, each node with its own pool, cache,
// and coalescing map. Every node gets the same per-node configuration —
// the comparison measures horizontal scaling plus router overhead, not
// a bigger box. Design runs carry cfg.modelLatency of modeled remote-
// LLM latency, the regime real LLM serving is bound by; duplicate
// requests hash to one node via the router's consistent ring, so
// fleet-wide coalesce hits stay observable on the per-node /metrics.
func runFleet(cfg config, items []workItem, unique int, w io.Writer) ([]phaseResult, error) {
	onePhase := func(name string, nodes int) (phaseResult, error) {
		base, nodeURLs, shutdown, err := fleetTarget(cfg, nodes)
		if err != nil {
			return phaseResult{}, err
		}
		defer shutdown()
		res, err := runSingle(base, items, cfg)
		if err != nil {
			return phaseResult{}, err
		}
		res.Name = name
		res.Mode = "fleet"
		res.Nodes = nodes
		res.UniqueItems = unique
		res.DupRatio = cfg.dup
		for _, nu := range nodeURLs {
			res.CoalesceHits += scrapeCounter(nu, "artisan_jobs_coalesce_hits_total")
			res.CacheHits += scrapeCounter(nu, "artisan_jobs_cache_hits_total")
		}
		return res, nil
	}
	runPhase := func(name string, nodes int) (phaseResult, error) {
		var best phaseResult
		for rep := 0; rep < cfg.repeat; rep++ {
			res, err := onePhase(name, nodes)
			if err != nil {
				return phaseResult{}, err
			}
			if rep == 0 || res.ItemsPerSec > best.ItemsPerSec {
				best = res
			}
		}
		fmt.Fprintln(w, best.String())
		return best, nil
	}
	one, err := runPhase("LoadgenFleetNode1", 1)
	if err != nil {
		return nil, err
	}
	fleet, err := runPhase(fmt.Sprintf("LoadgenFleet%d", cfg.nodes), cfg.nodes)
	if err != nil {
		return nil, err
	}
	if fleet.ItemsPerSec > 0 && one.ItemsPerSec > 0 {
		fleet.SpeedupVsOneNode = fleet.ItemsPerSec / one.ItemsPerSec
	}
	fmt.Fprintf(w, "loadgen: %d-node fleet throughput %.2fx one node (%0.f vs %0.f items/s), fleet coalesce hits %g\n",
		cfg.nodes, fleet.SpeedupVsOneNode, fleet.ItemsPerSec, one.ItemsPerSec, fleet.CoalesceHits)
	return []phaseResult{one, fleet}, nil
}

// simItem is one /simulate request of the genbench mix.
type simItem struct {
	Netlist string `json:"netlist"`
	Out     string `json:"out,omitempty"`
}

// makeSimWorkload builds a simulate mix from the constrained random
// topology generator: round(n*(1-dup)) unique generated netlists, the
// rest duplicates sampled from them, shuffled — all seeded. At dup 0
// every request body is distinct, so nothing coalesces and nothing
// caches.
func makeSimWorkload(cfg config, dup float64) ([]simItem, int, error) {
	rng := rand.New(rand.NewSource(cfg.seed))
	unique := cfg.n - int(float64(cfg.n)*dup)
	if unique < 1 {
		unique = 1
	}
	items := make([]simItem, 0, cfg.n)
	for i := 0; i < unique; i++ {
		_, nl, err := topology.NewGenerator(cfg.seed*1_000_000 + int64(i)).Netlist()
		if err != nil {
			return nil, 0, fmt.Errorf("generating topology %d: %w", i, err)
		}
		items = append(items, simItem{Netlist: nl.String(), Out: "out"})
	}
	for len(items) < cfg.n {
		items = append(items, items[rng.Intn(unique)])
	}
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	return items, unique, nil
}

// runGenbench is the cache-hostile compare: the same request count
// replayed through POST /simulate/batch twice, once as a duplicate-
// heavy mix (the coalescing layer's home turf) and once as all-unique
// generated topologies (its worst case). The gap between the two
// entries' coalesce counters is the profile's point: unique generated
// work defeats request coalescing by construction.
func runGenbench(cfg config, w io.Writer) ([]phaseResult, error) {
	dupRatio := cfg.dup
	if dupRatio <= 0 {
		dupRatio = 0.5
	}
	onePhase := func(name string, dup float64) (phaseResult, error) {
		items, unique, err := makeSimWorkload(cfg, dup)
		if err != nil {
			return phaseResult{}, err
		}
		base, shutdown := cfg.target()
		defer shutdown()
		res, err := runSimBatch(base, items, cfg)
		if err != nil {
			return phaseResult{}, err
		}
		res.Name = name
		res.UniqueItems = unique
		res.DupRatio = dup
		res.CoalesceHits = scrapeCounter(base, "artisan_jobs_coalesce_hits_total")
		res.CacheHits = scrapeCounter(base, "artisan_jobs_cache_hits_total")
		return res, nil
	}
	runPhase := func(name string, dup float64) (phaseResult, error) {
		var best phaseResult
		for rep := 0; rep < cfg.repeat; rep++ {
			res, err := onePhase(name, dup)
			if err != nil {
				return phaseResult{}, err
			}
			if rep == 0 || res.ItemsPerSec > best.ItemsPerSec {
				best = res
			}
		}
		fmt.Fprintln(w, best.String())
		return best, nil
	}
	fmt.Fprintf(w, "loadgen: genbench simulate mix, %d items, seed %d\n", cfg.n, cfg.seed)
	dup, err := runPhase("LoadgenGenbenchDup", dupRatio)
	if err != nil {
		return nil, err
	}
	hostile, err := runPhase("LoadgenGenbenchUnique", 0)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "loadgen: cache-hostile mix coalesced %g (duplicate mix %g) at %.0f items/s\n",
		hostile.CoalesceHits, dup.CoalesceHits, hostile.ItemsPerSec)
	return []phaseResult{dup, hostile}, nil
}

// runSimBatch replays a simulate mix chunked into /simulate/batch
// requests, cfg.concurrency batches in flight.
func runSimBatch(base string, items []simItem, cfg config) (phaseResult, error) {
	var chunks [][]simItem
	for len(items) > 0 {
		k := cfg.batch
		if k > len(items) {
			k = len(items)
		}
		chunks = append(chunks, items[:k])
		items = items[k:]
	}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		errs      int
	)
	next := make(chan []simItem)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chunk := range next {
				lats, bad := postNDJSONBatch(base+"/simulate/batch",
					map[string]any{"items": chunk}, len(chunk))
				mu.Lock()
				latencies = append(latencies, lats...)
				errs += bad
				mu.Unlock()
			}
		}()
	}
	total := 0
	for _, chunk := range chunks {
		total += len(chunk)
		next <- chunk
	}
	close(next)
	wg.Wait()
	res := summarize("", "simbatch", cfg, make([]workItem, total), latencies, errs, time.Since(start))
	res.BatchSize = cfg.batch
	return res, nil
}

// fleetTarget starts nodes identical in-process worker servers and,
// when nodes > 1, a router in front of them. It returns the base URL to
// drive, the per-node URLs (for /metrics scraping), and the teardown.
func fleetTarget(cfg config, nodes int) (base string, nodeURLs []string, shutdown func(), err error) {
	var closers []func()
	shutdown = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	for i := 0; i < nodes; i++ {
		svc := server.NewWithOptions(server.Options{
			Workers:      cfg.nodeWorkers,
			Queue:        cfg.n + cfg.concurrency,
			NodeID:       fmt.Sprintf("n%d", i+1),
			ModelLatency: cfg.modelLatency,
		})
		ts := httptest.NewServer(svc)
		closers = append(closers, ts.Close)
		nodeURLs = append(nodeURLs, ts.URL)
	}
	if nodes == 1 {
		return nodeURLs[0], nodeURLs, shutdown, nil
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Nodes:          nodeURLs,
		HealthInterval: 500 * time.Millisecond,
	})
	if err != nil {
		shutdown()
		return "", nil, nil, err
	}
	closers = append(closers, rt.Close)
	ts := httptest.NewServer(rt)
	closers = append(closers, ts.Close)
	return ts.URL, nodeURLs, shutdown, nil
}

// target returns the base URL to drive and its teardown. With no -url an
// in-process server is started — one per phase, so compare runs measure
// both paths against identical (cold) cache state.
func (c config) target() (string, func()) {
	if c.url != "" {
		return strings.TrimRight(c.url, "/"), func() {}
	}
	svc := server.NewWithOptions(server.Options{
		Workers:  c.workers,
		Queue:    c.n + c.batch,
		MaxBatch: c.batch,
	})
	ts := httptest.NewServer(svc)
	return ts.URL, ts.Close
}

// makeWorkload builds the deterministic request mix: round(n*(1-dup))
// unique (group, seed) pairs, the rest duplicates sampled from them, the
// whole sequence shuffled — all driven by cfg.seed alone.
func makeWorkload(cfg config) ([]workItem, int) {
	rng := rand.New(rand.NewSource(cfg.seed))
	unique := cfg.n - int(float64(cfg.n)*cfg.dup)
	if unique < 1 {
		unique = 1
	}
	items := make([]workItem, 0, cfg.n)
	for i := 0; i < unique; i++ {
		items = append(items, workItem{
			Group:   cfg.groups[i%len(cfg.groups)],
			Seed:    cfg.seed*1_000_000 + int64(i),
			Tune:    cfg.backend != "",
			Backend: cfg.backend,
		})
	}
	for len(items) < cfg.n {
		items = append(items, items[rng.Intn(unique)])
	}
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	return items, unique
}

// runSingle replays the mix item by item through POST /design from
// cfg.concurrency client goroutines.
func runSingle(base string, items []workItem, cfg config) (phaseResult, error) {
	var (
		mu        sync.Mutex
		latencies = make([]time.Duration, 0, len(items))
		errs      int
	)
	next := make(chan workItem)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range next {
				t0 := time.Now()
				ok := postDesign(base, it)
				d := time.Since(t0)
				mu.Lock()
				latencies = append(latencies, d)
				if !ok {
					errs++
				}
				mu.Unlock()
			}
		}()
	}
	for _, it := range items {
		next <- it
	}
	close(next)
	wg.Wait()
	return summarize("LoadgenDesignSingle", "single", cfg, items, latencies, errs, time.Since(start)), nil
}

func postDesign(base string, it workItem) bool {
	blob, _ := json.Marshal(it)
	resp, err := http.Post(base+"/design", "application/json", bytes.NewReader(blob))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// runBatch replays the same mix chunked into /design/batch requests,
// cfg.concurrency batches in flight. Per-item latency is the time from
// batch POST to that item's NDJSON line arriving on the stream.
func runBatch(base string, items []workItem, cfg config) (phaseResult, error) {
	var chunks [][]workItem
	for len(items) > 0 {
		k := cfg.batch
		if k > len(items) {
			k = len(items)
		}
		chunks = append(chunks, items[:k])
		items = items[k:]
	}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		errs      int
	)
	next := make(chan []workItem)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chunk := range next {
				lats, bad := postBatch(base, chunk)
				mu.Lock()
				latencies = append(latencies, lats...)
				errs += bad
				mu.Unlock()
			}
		}()
	}
	total := 0
	for _, chunk := range chunks {
		total += len(chunk)
		next <- chunk
	}
	close(next)
	wg.Wait()
	res := summarize("LoadgenDesignBatch", "batch", cfg, make([]workItem, total), latencies, errs, time.Since(start))
	res.BatchSize = cfg.batch
	return res, nil
}

// postBatch posts one design batch and reads its NDJSON stream.
func postBatch(base string, chunk []workItem) ([]time.Duration, int) {
	return postNDJSONBatch(base+"/design/batch", map[string]any{"items": chunk}, len(chunk))
}

// postNDJSONBatch posts one batch payload and reads the NDJSON stream,
// timing each item line against the batch start. Items whose line
// reports an error — and items missing entirely when the stream fails —
// count as errors.
func postNDJSONBatch(url string, payload any, n int) ([]time.Duration, int) {
	t0 := time.Now()
	blob, _ := json.Marshal(payload)
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		return nil, n
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, n
	}
	var (
		lats []time.Duration
		errs int
		seen int
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var line struct {
			Summary bool   `json:"summary"`
			OK      bool   `json:"ok"`
			Error   string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil || line.Summary {
			continue
		}
		seen++
		lats = append(lats, time.Since(t0))
		if !line.OK {
			errs++
		}
	}
	errs += n - seen
	return lats, errs
}

func summarize(name, mode string, cfg config, items []workItem,
	latencies []time.Duration, errs int, elapsed time.Duration) phaseResult {
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	q := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	return phaseResult{
		Name:        name,
		Mode:        mode,
		Items:       len(items),
		Concurrency: cfg.concurrency,
		Errors:      errs,
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
		ItemsPerSec: float64(len(items)) / elapsed.Seconds(),
		P50MS:       q(0.50),
		P90MS:       q(0.90),
		P99MS:       q(0.99),
	}
}

func (r phaseResult) String() string {
	return fmt.Sprintf("loadgen: %-7s %5d items in %8.1fms  %8.1f items/s  p50 %6.2fms  p90 %6.2fms  p99 %6.2fms  errors %d  coalesce %g  cache %g",
		r.Mode, r.Items, r.ElapsedMS, r.ItemsPerSec, r.P50MS, r.P90MS, r.P99MS, r.Errors, r.CoalesceHits, r.CacheHits)
}

// scrapeCounter reads one counter's current value off GET /metrics.
func scrapeCounter(base, name string) float64 {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}
