package main

import (
	"bytes"
	"strings"
	"testing"
)

// The workload is a pure function of the config.
func TestMakeWorkloadDeterministic(t *testing.T) {
	cfg := config{n: 40, dup: 0.5, seed: 3, groups: []string{"G-1", "G-2"}}
	a, ua := makeWorkload(cfg)
	b, ub := makeWorkload(cfg)
	if ua != ub || len(a) != len(b) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", len(a), ua, len(b), ub)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if ua != 20 {
		t.Errorf("unique = %d, want 20", ua)
	}
	uniq := map[workItem]bool{}
	for _, it := range a {
		uniq[it] = true
	}
	if len(uniq) != ua {
		t.Errorf("distinct items = %d, want %d", len(uniq), ua)
	}
}

// The genbench profile end to end: the all-unique generated mix must
// finish error-free with exactly zero coalesce and cache hits (every
// request body is distinct by construction), while the duplicate mix
// against the same server configuration scores hits.
func TestGenbenchProfileSmoke(t *testing.T) {
	cfg := config{
		mode: "genbench", n: 48, batch: 16, dup: 0.5,
		concurrency: 4, seed: 11, repeat: 1,
	}
	var out bytes.Buffer
	results, err := run(cfg, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	dup, hostile := results[0], results[1]
	if dup.Name != "LoadgenGenbenchDup" || hostile.Name != "LoadgenGenbenchUnique" {
		t.Fatalf("names: %q, %q", dup.Name, hostile.Name)
	}
	for _, r := range results {
		if r.Errors != 0 {
			t.Errorf("%s: %d errors\n%s", r.Name, r.Errors, out.String())
		}
		if r.Items != cfg.n || r.ItemsPerSec <= 0 {
			t.Errorf("%s: bad stats %+v", r.Name, r)
		}
	}
	if hostile.CoalesceHits != 0 || hostile.CacheHits != 0 {
		t.Errorf("cache-hostile mix scored hits: coalesce %g cache %g",
			hostile.CoalesceHits, hostile.CacheHits)
	}
	if hostile.UniqueItems != cfg.n {
		t.Errorf("hostile mix has %d unique of %d items; want all unique", hostile.UniqueItems, cfg.n)
	}
	if dup.CoalesceHits+dup.CacheHits == 0 {
		t.Errorf("duplicate mix scored no coalesce/cache hits: %+v", dup)
	}
}

// The simulate workload is a pure function of the config, and at dup 0
// every netlist is distinct.
func TestMakeSimWorkloadDeterministic(t *testing.T) {
	cfg := config{n: 30, seed: 5}
	a, ua, err := makeSimWorkload(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, ub, err := makeSimWorkload(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ua != ub || len(a) != len(b) || ua != cfg.n {
		t.Fatalf("sizes: %d/%d vs %d/%d", len(a), ua, len(b), ub)
	}
	uniq := map[string]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d differs", i)
		}
		uniq[a[i].Netlist] = true
	}
	if len(uniq) != cfg.n {
		t.Errorf("distinct netlists = %d, want %d", len(uniq), cfg.n)
	}
}

// Compare mode end to end against the in-process server: the
// duplicate-heavy batch phase must score coalesce or cache hits and both
// phases must finish error-free.
func TestCompareSmoke(t *testing.T) {
	cfg := config{
		mode: "compare", n: 24, batch: 8, dup: 0.5,
		concurrency: 4, seed: 7, groups: []string{"G-1"},
	}
	var out bytes.Buffer
	results, err := run(cfg, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	single, batch := results[0], results[1]
	if single.Mode != "single" || batch.Mode != "batch" {
		t.Fatalf("modes: %q, %q", single.Mode, batch.Mode)
	}
	for _, r := range results {
		if r.Errors != 0 {
			t.Errorf("%s: %d errors\n%s", r.Name, r.Errors, out.String())
		}
		if r.Items != cfg.n {
			t.Errorf("%s: %d items, want %d", r.Name, r.Items, cfg.n)
		}
		if r.ItemsPerSec <= 0 || r.P50MS < 0 {
			t.Errorf("%s: bad stats %+v", r.Name, r)
		}
	}
	if batch.CoalesceHits+batch.CacheHits == 0 {
		t.Errorf("duplicate-heavy batch phase scored no coalesce/cache hits: %+v", batch)
	}
	if !strings.Contains(out.String(), "batch throughput") {
		t.Errorf("missing compare summary line:\n%s", out.String())
	}
}
