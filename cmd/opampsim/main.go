// Command opampsim AC-simulates a behavioral netlist with the in-repo MNA
// engine (the Cadence Spectre substitute) and reports the opamp metrics,
// poles, and zeros.
//
// Usage:
//
//	opampsim circuit.sp            # simulate a file
//	opampsim -out vout circuit.sp  # custom output node
//	cat circuit.sp | opampsim -    # read from stdin
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"os"

	"artisan/internal/measure"
	"artisan/internal/mna"
	"artisan/internal/netlist"
	"artisan/internal/plot"
	"artisan/internal/telemetry"
	"artisan/internal/units"
)

func main() {
	var (
		out    = flag.String("out", "out", "output node name")
		sweep  = flag.Bool("sweep", false, "print the magnitude/phase sweep")
		noise  = flag.Bool("noise", false, "print the output noise sweep and integrated noise")
		tran   = flag.Bool("tran", false, "print the closed-loop step response (unity feedback)")
		stepV  = flag.Float64("step", 0.5, "step amplitude for -tran, V")
		doPlot = flag.Bool("plot", false, "render ASCII plots for -sweep and -tran")
		trace  = flag.Bool("trace", false, "print the span tree of the analysis (sweep + pole/zero solves)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: opampsim [-out node] <netlist.sp | ->")
		os.Exit(2)
	}

	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "opampsim:", err)
		os.Exit(1)
	}

	nl, err := netlist.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "opampsim:", err)
		os.Exit(1)
	}
	fmt.Printf("parsed %q: %d devices, %d nodes\n", nl.Title, len(nl.Devices), len(nl.Nodes()))

	ctx := context.Background()
	var tracer *telemetry.Tracer
	if *trace {
		tracer = telemetry.NewTracer(4)
		ctx = telemetry.WithTracer(ctx, tracer)
	}
	rep, err := measure.AnalyzeContext(ctx, nl, *out)
	if tracer != nil {
		fmt.Println("trace:")
		for _, root := range tracer.Traces() {
			fmt.Print(root.Tree())
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "opampsim:", err)
		os.Exit(1)
	}
	fmt.Println(rep)
	fmt.Printf("  DC gain    : %.4g (%.2f dB)\n", rep.DCGain, rep.GainDB)
	fmt.Printf("  GBW        : %sHz\n", units.Format(rep.GBW))
	fmt.Printf("  PM         : %.2f°   GM: %.2f dB\n", rep.PM, rep.GM)
	fmt.Printf("  -3dB BW    : %sHz\n", units.Format(rep.F3dB))
	fmt.Printf("  Power est. : %sW\n", units.Format(rep.Power))

	c, err := mna.Compile(nl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opampsim:", err)
		os.Exit(1)
	}
	if poles, err := c.Poles(); err == nil {
		fmt.Printf("poles (%d):\n", len(poles))
		for _, p := range poles {
			fmt.Printf("  %s rad/s  (%sHz)\n", fmtC(p), units.Format(cmplx.Abs(p)/(2*3.141592653589793)))
		}
	}
	if zeros, err := c.Zeros(*out); err == nil {
		fmt.Printf("zeros (%d):\n", len(zeros))
		for _, z := range zeros {
			fmt.Printf("  %s rad/s\n", fmtC(z))
		}
	}

	if *sweep {
		pts, err := c.Sweep(*out, 1, 1e9, 4)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opampsim:", err)
			os.Exit(1)
		}
		if *doPlot {
			ser := plot.Series{Name: "Bode magnitude"}
			for _, p := range pts {
				ser.X = append(ser.X, p.Freq)
				ser.Y = append(ser.Y, units.DB(cmplx.Abs(p.H)))
			}
			if txt, err := plot.Render(ser, plot.Options{LogX: true, XLabel: "Hz", YLabel: "dB"}); err == nil {
				fmt.Print(txt)
			}
		} else {
			fmt.Println("freq(Hz)  |H|(dB)  phase(deg)")
			for _, p := range pts {
				fmt.Printf("%9s  %7.2f  %8.2f\n", units.Format(p.Freq),
					units.DB(cmplx.Abs(p.H)), units.Deg(cmplx.Phase(p.H)))
			}
		}
	}

	if *noise {
		npts, err := c.NoiseSweep(*out, 1, 1e8, 2, mna.NoiseOpts{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "opampsim:", err)
			os.Exit(1)
		}
		fmt.Println("freq(Hz)  Svv(V²/Hz)  density(nV/√Hz)")
		for _, p := range npts {
			fmt.Printf("%9s  %10.3e  %10.2f\n", units.Format(p.Freq), p.Svv, 1e9*math.Sqrt(p.Svv))
		}
		if vrms, err := c.IntegratedNoise(*out, 1, 1e8, mna.NoiseOpts{}); err == nil {
			fmt.Printf("integrated output noise (1 Hz – 100 MHz): %sV rms\n", units.Format(vrms))
		}
	}

	if *tran {
		srep, err := measure.StepAnalyze(nl, *out, measure.StepOpts{
			StepV: *stepV, InputStage: "Gm1", Power: measure.DefaultPowerModel()})
		if err != nil {
			fmt.Fprintln(os.Stderr, "opampsim:", err)
			os.Exit(1)
		}
		fmt.Println("closed-loop (unity buffer) step response:")
		fmt.Printf("  %s\n", srep)
		fmt.Printf("  FoM_L = SR·CL/P: compute with your load via measure.FoMLarge\n")
		if *doPlot {
			ser := plot.Series{Name: "step response"}
			for _, p := range srep.Points {
				ser.X = append(ser.X, p.T)
				ser.Y = append(ser.Y, p.V)
			}
			if txt, err := plot.Render(ser, plot.Options{XLabel: "s", YLabel: "V"}); err == nil {
				fmt.Print(txt)
			}
		} else {
			n := len(srep.Points)
			for i := 0; i < n; i += n / 20 {
				p := srep.Points[i]
				fmt.Printf("  t=%-9s v=%s\n", units.Format(p.T), units.Format(p.V))
			}
		}
	}
}

func fmtC(v complex128) string {
	if imag(v) == 0 {
		return units.Format(real(v))
	}
	return fmt.Sprintf("%s%+sj", units.Format(real(v)), units.Format(imag(v)))
}
