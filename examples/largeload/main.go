// Largeload reproduces the paper's flagship interpretability story
// (§4.3, Fig. 7 Q9→A9): an NMC design that is perfectly adequate at
// CL = 10 pF collapses when asked to drive 1 nF, and the framework's
// second Tree-of-Thoughts decision point diagnoses the failure and
// rebuilds the circuit as DFCFC — a damping-factor-control block replaces
// the inner Miller capacitor.
package main

import (
	"context"
	"fmt"
	"log"

	"artisan/internal/agents"
	"artisan/internal/design"
	"artisan/internal/llm"
	"artisan/internal/measure"
	"artisan/internal/spec"
	"artisan/internal/topology"
)

func main() {
	g1, _ := spec.Group("G-1")
	g5, _ := spec.Group("G-5") // same thresholds, CL = 1 nF

	// Step 1: a by-the-book NMC design for the 10 pF spec.
	nmc, err := design.Design("NMC", g1, nil)
	if err != nil {
		log.Fatal(err)
	}
	sim := agents.NewSimulator()
	rep10, err := sim.MeasureTopology(context.Background(), nmc.Topo, g1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("NMC at CL = 10 pF:", rep10)
	fmt.Println("  verdict:", spec.Describe(g1.Check(rep10)))

	// Step 2: the same circuit against the 1 nF load.
	rep1n, err := sim.MeasureTopology(context.Background(), nmc.Topo, g5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsame NMC at CL = 1 nF:", rep1n)
	fmt.Println("  verdict:", spec.Describe(g5.Check(rep1n)))
	fmt.Println("  (the output pole gm3/(2π·CL) collapsed by 100×)")

	// Step 3: what would brute force cost? Scale gm3 back up.
	brute := nmc.Topo.Clone()
	brute.Stages[2].Gm *= 100 // gm3 ∝ CL in plain NMC
	if repB, err := sim.MeasureTopology(context.Background(), brute, g5); err == nil {
		fmt.Printf("\nbrute-force NMC (gm3 ×100): %v\n", repB)
		fmt.Println("  verdict:", spec.Describe(g5.Check(repB)))
	}

	// Step 4: let the full multi-agent session handle it — the failure
	// description routes to the DFC modification card.
	model := llm.NewDomainModel(1, 0)
	out, err := agents.NewSession(model, g5, agents.DefaultOptions()).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if !out.Success {
		log.Fatalf("session failed: %s", out.FailReason)
	}
	fmt.Printf("\nArtisan's answer for 1 nF: %s\n", out.Arch)
	fmt.Println("  measured:", out.Report)
	fmt.Printf("  FoM: %.0f MHz·pF/mW at %sW — versus the paper's 12769.5 at 147.8 µW\n",
		g5.FoMOf(out.Report), fmtW(out.Report))

	// Step 5: show the DFC block in the netlist.
	fmt.Println("\nfinal topology:", out.Topology.Summary())
	dfc := out.Topology.ConnAt(topology.Position{From: "n1", To: "0"})
	if dfc != nil {
		fmt.Printf("  DFC block: gm4 = %.4g S with Cm3 = %.3g F shunting the first-stage output\n",
			dfc.Gm, dfc.C)
	}
}

func fmtW(r measure.Report) string { return fmt.Sprintf("%.1fµ", r.Power*1e6) }
