// Lowpower works the paper's G-4 scenario (power < 50 µW) and then goes
// beyond it: after the knowledge-driven design lands inside the budget,
// the Bayesian-optimization parameter-tuning tool (Fig. 2's "parameter
// tuning tool [14]") squeezes the figure of merit further while holding
// every spec — the optional tool-assisted refinement loop of the paper's
// workflow.
package main

import (
	"context"
	"fmt"
	"log"

	"artisan/internal/agents"
	"artisan/internal/llm"
	"artisan/internal/spec"
)

func main() {
	g4, _ := spec.Group("G-4")
	fmt.Println("spec:", g4)

	// Knowledge-driven design (deterministic expert).
	model := llm.NewDomainModel(3, 0)
	session := agents.NewSession(model, g4, agents.DefaultOptions())
	out, err := session.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if !out.Success {
		log.Fatalf("design failed: %s", out.FailReason)
	}
	fmt.Printf("\nknowledge-driven %s design:\n  %v\n  FoM = %.1f\n",
		out.Arch, out.Report, g4.FoMOf(out.Report))

	// BO refinement on top: tune the continuous parameters for FoM
	// subject to the specs.
	tuner := agents.NewTuner(session.Sim, 7)
	tuned, rep, score, err := tuner.Tune(context.Background(), out.Topology, g4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter BO parameter tuning (%d extra simulations):\n  %v\n  FoM = %.1f (score %.1f)\n",
		session.Sim.Invocations-out.SimCount, rep, g4.FoMOf(rep), score)
	if !g4.Satisfied(rep) {
		fmt.Println("  note: tuner result violates a spec; keeping the knowledge-driven design")
		return
	}
	improvement := g4.FoMOf(rep) / g4.FoMOf(out.Report)
	fmt.Printf("  FoM improvement over the analytic design: %.2f×\n", improvement)
	fmt.Println("\ntuned parameters:", tuned.Summary())
	fmt.Printf("power: %.1f µW of the %.0f µW budget\n", rep.Power*1e6, g4.MaxPower*1e6)
}
