// Characterize produces a datasheet-style report for an Artisan-designed
// opamp using the full simulator substrate: AC metrics, pole/zero
// locations, output noise, the closed-loop step response with slew
// limiting, and a Monte-Carlo mismatch yield — everything a designer
// would pull from a commercial simulator before trusting a circuit.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"artisan/internal/core"
	"artisan/internal/experiment"
	"artisan/internal/llm"
	"artisan/internal/measure"
	"artisan/internal/mna"
	"artisan/internal/spec"
	"artisan/internal/units"
)

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

func main() {
	g1, _ := spec.Group("G-1")
	a := core.NewWithModel(llm.NewDomainModel(1, 0))
	out, err := a.Design(context.Background(), g1)
	if err != nil || !out.Success {
		log.Fatalf("design failed: %v %s", err, out.FailReason)
	}
	nl := out.Netlist

	fmt.Printf("==== datasheet: %s for %s ====\n\n", out.Arch, g1.Name)

	// --- small signal ---
	fmt.Println("[small-signal]")
	fmt.Printf("  DC gain        : %.1f dB\n", out.Report.GainDB)
	fmt.Printf("  GBW            : %sHz\n", units.Format(out.Report.GBW))
	fmt.Printf("  phase margin   : %.1f°\n", out.Report.PM)
	fmt.Printf("  gain margin    : %.1f dB\n", out.Report.GM)
	fmt.Printf("  -3 dB bandwidth: %sHz\n", units.Format(out.Report.F3dB))
	fmt.Printf("  supply power   : %sW\n", units.Format(out.Report.Power))
	fmt.Printf("  FoM (Eq. 6)    : %.1f MHz·pF/mW\n\n", g1.FoMOf(out.Report))

	// --- poles and zeros ---
	c, err := mna.Compile(nl)
	if err != nil {
		log.Fatal(err)
	}
	if poles, err := c.Poles(); err == nil {
		fmt.Println("[poles]")
		for _, p := range poles {
			fmt.Printf("  %sHz", units.Format(cmplx.Abs(p)/(2*math.Pi)))
			if imag(p) != 0 {
				q := cmplx.Abs(p) / (2 * math.Abs(real(p)))
				fmt.Printf("  (complex pair, Q = %.2f)", q)
			}
			fmt.Println()
		}
	}
	fmt.Println()

	// --- noise ---
	fmt.Println("[noise]")
	svv, err := c.NoiseAt("out", 1e3, mna.NoiseOpts{})
	if err != nil {
		log.Fatal(err)
	}
	h, _ := c.TFAt("out", 1e3)
	inputDensity := math.Sqrt(svv) / cmplx.Abs(h)
	fmt.Printf("  input-referred density @1 kHz: %.1f nV/√Hz\n", inputDensity*1e9)
	if vrms, err := c.IntegratedNoise("out", 1, 1e8, mna.NoiseOpts{}); err == nil {
		fmt.Printf("  integrated output noise      : %sV rms\n\n", units.Format(vrms))
	}

	// --- large signal (unity buffer) ---
	fmt.Println("[large-signal, unity-gain buffer, 0.5 V step]")
	srep, err := measure.StepAnalyze(nl, "out", measure.DefaultStepOpts())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  slew rate      : %.2f V/µs\n", srep.SlewRate/1e6)
	fmt.Printf("  1%% settling    : %ss\n", units.Format(srep.Settle1))
	fmt.Printf("  overshoot      : %.1f%%\n", srep.Overshoot*100)
	fmt.Printf("  FoM_L          : %.1f V/µs·pF/mW\n\n",
		measure.FoMLarge(srep.SlewRate, g1.CL, out.Report.Power))

	// --- yield ---
	fmt.Println("[Monte-Carlo mismatch, 5% component spread, 200 samples]")
	yr, err := experiment.MonteCarloYield(nl, g1, experiment.DefaultYieldOpts(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", yr)
	for metric, n := range yr.Violations {
		fmt.Printf("  binding metric: %s (%d failures)\n", metric, n)
	}

	// --- sensitivities: which element controls what ---
	fmt.Println("\n[sensitivities, top rows by |S(GBW)|]")
	sens, err := measure.Sensitivities(nl, "out", 0.05)
	if err != nil {
		log.Fatal(err)
	}
	lines := 0
	for _, line := range splitLines(sens.String()) {
		fmt.Println(" ", line)
		lines++
		if lines > 6 {
			break
		}
	}

	// --- transistor mapping ---
	if out.Transistor != nil {
		fmt.Println("\n[transistor-level mapping]")
		fmt.Printf("  %d devices, %sA total bias, %sW at %.1f V\n",
			len(out.Transistor.Devices), units.Format(out.Transistor.ITotal),
			units.Format(out.Transistor.Power()), out.Transistor.VDD)
	}
}
