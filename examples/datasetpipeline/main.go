// Datasetpipeline runs the paper's §3.4 data story end to end: generate
// the opamp dataset (collected corpus, NetlistTuples via the bidirectional
// representation, Alpaca-style instructions, DesignQA distilled from real
// design-procedure executions), account for it as Table 1, train the
// Artisan-LLM through the two-phase DAPT → SFT pipeline, and demonstrate
// that the trained model answers design questions and drives a successful
// design session.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"artisan/internal/agents"
	"artisan/internal/corpus"
	"artisan/internal/describe"
	"artisan/internal/llm"
	"artisan/internal/spec"
)

func main() {
	// 1. Build the dataset at 1/200 of the paper's scale.
	cfg := corpus.Config{Scale: 1.0 / 200, Seed: 11, AugmentVariants: 3}
	build, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(build.Table1(cfg.Scale))
	fmt.Println("\nextrapolated to paper scale:")
	fmt.Print(build.Table1(cfg.Scale).ScaledToPaper())

	// 2. Show the bidirectional representation in action: parse a
	// generated description back into a topology.
	tu := build.Tuples[0]
	topo, err := describe.Parse(tu.Description)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNetlistTuple round trip:")
	fmt.Println("  description:", clip(tu.Description, 140))
	fmt.Println("  parsed back:", topo.Summary())

	// 3. Train (DAPT then SFT) and show the honest loss curves.
	model, report, err := llm.Train(build.Dataset(), llm.DefaultTrainConfig(11))
	if err != nil {
		log.Fatal(err)
	}
	for _, ph := range []llm.PhaseReport{report.DAPT, report.SFT} {
		fmt.Printf("\n%s: %d samples, %d tokens\n  held-out cross-entropy: ", ph.Phase, ph.Samples, ph.Tokens)
		for _, l := range ph.LossCurve {
			fmt.Printf("%.3f ", l)
		}
		fmt.Printf("\n  improved: %v", ph.Improved())
	}
	fmt.Printf("\nvocabulary: %d word pieces\n", report.Vocab)

	// 4a. The fitted LM can even babble in-domain (a fun smoke test of
	// what the corpus taught it).
	rng := rand.New(rand.NewSource(11))
	fmt.Printf("\nLM sample after 'the dominant pole': %q\n",
		model.LM().Sample("the dominant pole", 10, 0.7, rng))

	// 4. The trained model answers a domain question…
	ans, err := model.Generate("How to allocate these poles in an NMC opamp?")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntrained model on pole allocation:")
	fmt.Println(" ", clip(ans, 200))

	// 5. …and drives a full design session.
	g1, _ := spec.Group("G-1")
	out, err := agents.NewSession(model, g1, agents.DefaultOptions()).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrained model designing G-1: success=%v, %v\n", out.Success, out.Report)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
