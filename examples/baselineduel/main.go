// Baselineduel pits the three families of the paper's Table 3 against
// each other on one spec group with a shared simulation budget: the
// black-box optimizers (BOBO, RLBO) burn their whole budget searching,
// the off-the-shelf LLM baselines fail to execute the flow at all, and
// the knowledge-driven Artisan closes the design in a couple of
// simulations. Wall-clock is modeled with the paper-calibrated cost model.
package main

import (
	"context"
	"fmt"
	"log"

	"artisan/internal/agents"
	"artisan/internal/experiment"
	"artisan/internal/llm"
	"artisan/internal/opt"
	"artisan/internal/spec"
)

func main() {
	g3, _ := spec.Group("G-3") // the GBW-dominated group
	const budget = 120
	cost := experiment.DefaultCostModel()
	fmt.Println("spec:", g3)
	fmt.Printf("baseline budget: %d simulations\n\n", budget)

	if r, err := opt.BOBO(g3, budget, 1); err == nil {
		fmt.Printf("BOBO   : success=%-5v sims=%3d  modeled time %v\n", r.Success, r.Sims, cost.BOBOTime(r.Sims))
		if r.Best != nil {
			fmt.Printf("         best: %s\n", r.Best.Summary())
			fmt.Printf("         %s\n", experiment.FormatReport(g3, r.Report))
		}
	}
	if r, err := opt.RLBO(g3, budget, 2); err == nil {
		fmt.Printf("RLBO   : success=%-5v sims=%3d  modeled time %v\n", r.Success, r.Sims, cost.RLBOTime(r.Sims))
		if r.Best != nil {
			fmt.Printf("         best: %s\n", r.Best.Summary())
			fmt.Printf("         %s\n", experiment.FormatReport(g3, r.Report))
		}
	}

	for _, m := range []llm.DesignerModel{llm.NewGPT4Model(), llm.NewLlama2Model()} {
		out, err := agents.NewSession(m, g3, agents.DefaultOptions()).Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s: success=%-5v (%s)\n", m.Name(), out.Success, clip(out.FailReason, 80))
	}

	out, err := agents.NewSession(llm.NewDomainModel(3, 0), g3, agents.DefaultOptions()).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	artTime := cost.ArtisanTime(out.SimCount, out.QACount, out.Success)
	fmt.Printf("Artisan: success=%-5v sims=%3d  modeled time %v\n", out.Success, out.SimCount, artTime)
	fmt.Printf("         arch: %s\n", out.Arch)
	fmt.Printf("         %s\n", experiment.FormatReport(g3, out.Report))
	fmt.Printf("\nArtisan vs a full %d-sim BOBO run: %.1f× faster\n",
		budget, float64(cost.BOBOTime(budget))/float64(artTime))
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
