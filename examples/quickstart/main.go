// Quickstart: design a three-stage opamp for the paper's baseline spec
// group G-1 with five lines of API, then inspect every artifact the
// framework produces — the metrics, the interpretable chat log, the
// behavioral netlist, and the transistor-level mapping.
package main

import (
	"context"
	"fmt"
	"log"

	"artisan/internal/core"
	"artisan/internal/llm"
	"artisan/internal/spec"
)

func main() {
	// 1. Pick a spec (Table 2's G-1) and build an Artisan instance.
	// core.New(seed) runs the LLM at its stochastic operating
	// temperature; the deterministic expert below keeps this demo
	// byte-reproducible.
	g1, err := spec.Group("G-1")
	if err != nil {
		log.Fatal(err)
	}
	artisan := core.NewWithModel(llm.NewDomainModel(1, 0))

	// 2. Design.
	out, err := artisan.Design(context.Background(), g1)
	if err != nil {
		log.Fatal(err)
	}
	if !out.Success {
		log.Fatalf("design failed: %s", out.FailReason)
	}

	// 3. Inspect the result.
	fmt.Printf("architecture : %s\n", out.Arch)
	fmt.Printf("measured     : %v\n", out.Report)
	fmt.Printf("FoM          : %.1f MHz·pF/mW\n", g1.FoMOf(out.Report))
	fmt.Printf("session      : %d QA steps, %d simulations\n\n", out.QACount, out.SimCount)

	fmt.Println("behavioral netlist:")
	fmt.Print(out.Netlist)

	if out.Transistor != nil {
		fmt.Println("\ntransistor-level netlist (gm/Id mapping):")
		fmt.Print(out.Transistor)
	}

	fmt.Println("\ninterpretable design log:")
	fmt.Print(out.Transcript.Chat())
}
