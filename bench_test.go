// Repository-level benchmarks: one per table and figure of the paper's
// evaluation (§4), plus ablations of the design choices called out in
// DESIGN.md. Each benchmark regenerates its artifact per iteration;
// custom metrics report the reproduction-relevant quantities (success
// counts, speedups, token totals) alongside ns/op.
//
// The full paper-scale Table 3 takes minutes; run it through
// `go run ./cmd/evaltable`. The benchmarks here use reduced budgets so
// `go test -bench=.` stays fast while exercising the identical code paths.
package artisan

import (
	"context"
	"fmt"
	"testing"

	"artisan/internal/agents"
	"artisan/internal/core"
	"artisan/internal/corpus"
	"artisan/internal/describe"
	"artisan/internal/design"
	"artisan/internal/experiment"
	"artisan/internal/gmid"
	"artisan/internal/llm"
	"artisan/internal/measure"
	"artisan/internal/mna"
	"artisan/internal/netlist"
	"artisan/internal/opt"
	"artisan/internal/spec"
	"artisan/internal/topology"
)

// BenchmarkTable1Dataset regenerates the dataset accounting of Table 1:
// build the four splits at reduced scale and extrapolate the sample/token
// counts to paper scale.
func BenchmarkTable1Dataset(b *testing.B) {
	var lastTokens int
	for i := 0; i < b.N; i++ {
		cfg := corpus.Config{Scale: 0.002, Seed: int64(i), AugmentVariants: 4}
		build, err := corpus.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tab := build.Table1(cfg.Scale).ScaledToPaper()
		_, lastTokens = tab.Totals("Pre-training")
	}
	b.ReportMetric(float64(lastTokens)/1e6, "pretrainMtok")
}

// BenchmarkTable2Groups evaluates the spec machinery of Table 2: the five
// groups, their prompts, and the success predicate.
func BenchmarkTable2Groups(b *testing.B) {
	rep := measure.Report{GainDB: 106.5, GBW: 1.02e6, PM: 60.96, Power: 47.8e-6, Stable: true}
	for i := 0; i < b.N; i++ {
		for _, g := range spec.Groups() {
			_ = g.Prompt()
			_ = g.Check(rep)
			_ = g.FoMOf(rep)
		}
	}
}

// BenchmarkTable3Comparison runs a reduced Table 3 cell set per iteration:
// every method on G-1 with a small baseline budget. The success custom
// metrics expose the headline comparison (Artisan ≫ baselines).
func BenchmarkTable3Comparison(b *testing.B) {
	var artSucc, boSucc int
	var speedup float64
	for i := 0; i < b.N; i++ {
		cfg := experiment.DefaultConfig(int64(i))
		cfg.Trials = 1
		cfg.Budget = 40
		cfg.Groups = []string{"G-1"}
		t3, err := experiment.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if c, _ := t3.Cell(experiment.MethodArtisan, "G-1"); c.Successes > 0 {
			artSucc++
		}
		if c, _ := t3.Cell(experiment.MethodBOBO, "G-1"); c.Successes > 0 {
			boSucc++
		}
		speedup = t3.Speedup(experiment.MethodBOBO, "G-1")
	}
	b.ReportMetric(float64(artSucc)/float64(b.N), "artisanSucc")
	b.ReportMetric(float64(boSucc)/float64(b.N), "boboSucc")
	b.ReportMetric(speedup, "speedupX")
}

// BenchmarkFig1Skeleton elaborates the Fig. 1 behavioral model (skeleton
// plus small-signal stage models) and runs the full metric extraction.
func BenchmarkFig1Skeleton(b *testing.B) {
	topo := topology.NMC(25.13e-6, 37.7e-6, 251.3e-6, 4e-12, 3e-12)
	env := topology.DefaultEnv()
	for i := 0; i < b.N; i++ {
		nl, err := topo.Elaborate(env)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := measure.Analyze(nl, "out"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Workflow runs the complete Fig. 2 workflow end to end:
// specs → ToT selection → CoT flow → verification → gm/Id mapping.
func BenchmarkFig2Workflow(b *testing.B) {
	g1, _ := spec.Group("G-1")
	succ := 0
	for i := 0; i < b.N; i++ {
		a := core.NewWithModel(llm.NewDomainModel(int64(i), 0))
		out, err := a.Design(context.Background(), g1)
		if err != nil {
			b.Fatal(err)
		}
		if out.Success {
			succ++
		}
	}
	b.ReportMetric(float64(succ)/float64(b.N), "success")
}

// BenchmarkFig3Bidirectional exercises the bidirectional representation of
// Fig. 3: random topology → description → topology round trip.
func BenchmarkFig3Bidirectional(b *testing.B) {
	s := topology.NewSampler(1)
	for i := 0; i < b.N; i++ {
		topo := s.Random()
		d := describe.Describe(topo)
		if _, err := describe.Parse(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4DesignFlow runs the 8-step CoT design flow of Fig. 4 (the
// NMC procedure with its calculator derivations).
func BenchmarkFig4DesignFlow(b *testing.B) {
	g1, _ := spec.Group("G-1")
	for i := 0; i < b.N; i++ {
		if _, err := design.Design("NMC", g1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5MultiAgent runs the multi-agent QA session of Fig. 5
// (prompter ↔ designer with tool invocations) and reports the QA count.
func BenchmarkFig5MultiAgent(b *testing.B) {
	g1, _ := spec.Group("G-1")
	var qa int
	for i := 0; i < b.N; i++ {
		out, err := agents.NewSession(llm.NewDomainModel(int64(i), 0), g1, agents.DefaultOptions()).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		qa = out.QACount
	}
	b.ReportMetric(float64(qa), "qaSteps")
}

// BenchmarkFig6Examples regenerates the Fig. 6 design-example comparison:
// a (small-budget) BOBO search result next to Artisan's behavioral and
// transistor-level circuits.
func BenchmarkFig6Examples(b *testing.B) {
	g1, _ := spec.Group("G-1")
	for i := 0; i < b.N; i++ {
		if _, err := opt.BOBO(g1, 25, int64(i)); err != nil {
			b.Fatal(err)
		}
		r, err := design.Design("NMC", g1, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gmid.Map(gmid.Default180nm(), gmid.DefaultStagePlan(), r.Topo, 1.8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7ChatLogs regenerates the Fig. 7 chat-log comparison: one
// full Artisan transcript plus the single-step answers of GPT-4 and
// Llama2.
func BenchmarkFig7ChatLogs(b *testing.B) {
	g1, _ := spec.Group("G-1")
	gpt4 := llm.NewGPT4Model()
	llama := llm.NewLlama2Model()
	var chatLen int
	for i := 0; i < b.N; i++ {
		out, err := agents.NewSession(llm.NewDomainModel(1, 0), g1, agents.DefaultOptions()).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		chat := out.Transcript.Chat()
		chatLen = len(chat)
		for _, m := range []llm.Model{gpt4, llama} {
			if _, err := m.Generate("please analyze the zero-pole distributions"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(chatLen), "chatBytes")
}

// --- ablation benches: the design choices DESIGN.md calls out ---------------

// BenchmarkAblationToTWidth compares single-shot architecture selection
// (the paper's flow) against verification-selected ToT with width 3.
func BenchmarkAblationToTWidth(b *testing.B) {
	g3, _ := spec.Group("G-3")
	for _, width := range []int{1, 3} {
		width := width
		b.Run(map[int]string{1: "width1", 3: "width3"}[width], func(b *testing.B) {
			succ, sims := 0, 0
			for i := 0; i < b.N; i++ {
				opts := agents.DefaultOptions()
				opts.TreeWidth = width
				out, err := agents.NewSession(llm.NewDomainModel(int64(i), 0.22), g3, opts).Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if out.Success {
					succ++
				}
				sims += out.SimCount
			}
			b.ReportMetric(float64(succ)/float64(b.N), "success")
			b.ReportMetric(float64(sims)/float64(b.N), "sims")
		})
	}
}

// BenchmarkAblationModification measures the value of the second ToT
// decision point (redesign after failed verification).
func BenchmarkAblationModification(b *testing.B) {
	g5, _ := spec.Group("G-5")
	for _, mods := range []int{0, 1} {
		mods := mods
		b.Run(map[int]string{0: "noMod", 1: "oneMod"}[mods], func(b *testing.B) {
			succ := 0
			for i := 0; i < b.N; i++ {
				opts := agents.DefaultOptions()
				opts.MaxModifications = mods
				out, err := agents.NewSession(llm.NewDomainModel(int64(i), 0.3), g5, opts).Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if out.Success {
					succ++
				}
			}
			b.ReportMetric(float64(succ)/float64(b.N), "success")
		})
	}
}

// BenchmarkAblationTuning measures the optional BO parameter-tuning tool
// as a failure rescue at high temperature.
func BenchmarkAblationTuning(b *testing.B) {
	g4, _ := spec.Group("G-4")
	for _, tune := range []bool{false, true} {
		tune := tune
		b.Run(map[bool]string{false: "noTune", true: "tune"}[tune], func(b *testing.B) {
			succ := 0
			for i := 0; i < b.N; i++ {
				opts := agents.DefaultOptions()
				opts.Tune = tune
				opts.MaxModifications = 0
				out, err := agents.NewSession(llm.NewDomainModel(int64(i)+100, 0.45), g4, opts).Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if out.Success {
					succ++
				}
			}
			b.ReportMetric(float64(succ)/float64(b.N), "success")
		})
	}
}

// BenchmarkMNASolve isolates the simulator substrate: one full AC metric
// extraction of the reference NMC opamp (the unit of the cost model).
func BenchmarkMNASolve(b *testing.B) {
	topo := topology.NMC(25.13e-6, 37.7e-6, 251.3e-6, 4e-12, 3e-12)
	nl, err := topo.Elaborate(topology.DefaultEnv())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := measure.Analyze(nl, "out"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCircuitSolveAt measures one workspace-backed MNA solve of the
// reference NMC system — the innermost unit of every sweep, pole search,
// and BO evaluation. Steady state must be allocation-free.
func BenchmarkCircuitSolveAt(b *testing.B) {
	topo := topology.NMC(25.13e-6, 37.7e-6, 251.3e-6, 4e-12, 3e-12)
	nl, err := topo.Elaborate(topology.DefaultEnv())
	if err != nil {
		b.Fatal(err)
	}
	c, err := mna.Compile(nl)
	if err != nil {
		b.Fatal(err)
	}
	ws := c.NewWorkspace()
	s := mna.Omega(1e6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.SolveAt(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCircuitSweep measures the 289-point AC sweep of measure.Analyze
// in isolation, on the parallel path.
func BenchmarkCircuitSweep(b *testing.B) {
	topo := topology.NMC(25.13e-6, 37.7e-6, 251.3e-6, 4e-12, 3e-12)
	nl, err := topo.Elaborate(topology.DefaultEnv())
	if err != nil {
		b.Fatal(err)
	}
	c, err := mna.Compile(nl)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Sweep("out", 1e-2, 1e10, 24); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoleZero measures pole plus zero extraction on a freshly
// compiled NMC circuit (the cold path measure.Analyze takes per report).
func BenchmarkPoleZero(b *testing.B) {
	topo := topology.NMC(25.13e-6, 37.7e-6, 251.3e-6, 4e-12, 3e-12)
	nl, err := topo.Elaborate(topology.DefaultEnv())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := mna.Compile(nl)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Poles(); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Zeros("out"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraining runs the simulated DAPT+SFT pipeline on a small
// dataset build.
func BenchmarkTraining(b *testing.B) {
	build, err := corpus.Generate(corpus.Config{Scale: 0.001, Seed: 1, AugmentVariants: 2})
	if err != nil {
		b.Fatal(err)
	}
	ds := build.Dataset()
	b.ResetTimer()
	var improved bool
	for i := 0; i < b.N; i++ {
		_, rep, err := llm.Train(ds, llm.DefaultTrainConfig(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		improved = rep.DAPT.Improved()
	}
	if !improved {
		b.Fatal("training did not improve held-out loss")
	}
}

// --- extension benches: capabilities beyond the paper's evaluation -----------

// BenchmarkTransientStep measures the large-signal characterization: a
// slew-limited closed-loop step on the reference NMC buffer.
func BenchmarkTransientStep(b *testing.B) {
	g1, _ := spec.Group("G-1")
	r, err := design.Design("NMC", g1, nil)
	if err != nil {
		b.Fatal(err)
	}
	env := topology.DefaultEnv()
	nl, err := r.Topo.Elaborate(env)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sr float64
	for i := 0; i < b.N; i++ {
		rep, err := measure.StepAnalyze(nl, "out", measure.DefaultStepOpts())
		if err != nil {
			b.Fatal(err)
		}
		sr = rep.SlewRate
	}
	b.ReportMetric(sr/1e6, "slewVperUs")
}

// BenchmarkNoiseSweep measures the thermal-noise analysis over 10 decades.
func BenchmarkNoiseSweep(b *testing.B) {
	topo := topology.NMC(25.13e-6, 37.7e-6, 251.3e-6, 4e-12, 3e-12)
	nl, err := topo.Elaborate(topology.DefaultEnv())
	if err != nil {
		b.Fatal(err)
	}
	c, err := mna.Compile(nl)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.NoiseSweep("out", 1, 1e9, 10, mna.NoiseOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloYield measures the mismatch-yield tool on a finished
// design (120 samples of 5% spread).
func BenchmarkMonteCarloYield(b *testing.B) {
	g1, _ := spec.Group("G-1")
	r, err := design.Design("NMC", g1, nil)
	if err != nil {
		b.Fatal(err)
	}
	env := topology.DefaultEnv()
	nl, err := r.Topo.Elaborate(env)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var y float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.MonteCarloYield(nl, g1, experiment.YieldOpts{Samples: 120, Sigma: 0.05, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		y = res.Yield()
	}
	b.ReportMetric(y, "yield")
}

// BenchmarkCorners measures the five-corner PVT sweep.
func BenchmarkCorners(b *testing.B) {
	g1, _ := spec.Group("G-1")
	r, err := design.Design("NMC", g1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	pass := false
	for i := 0; i < b.N; i++ {
		rep, err := experiment.RunCorners(r.Topo, g1, nil)
		if err != nil {
			b.Fatal(err)
		}
		pass = rep.Results[0].Pass
	}
	if !pass {
		b.Fatal("TT corner failed")
	}
}

// BenchmarkTwoStageWorkflow runs the §2.2 extension: a buffer-class spec
// through the full workflow, landing on the two-stage SMC family.
func BenchmarkTwoStageWorkflow(b *testing.B) {
	sp := spec.Spec{Name: "buffer", MinGainDB: 70, MinGBW: 2e6, MinPM: 55,
		MaxPower: 150e-6, CL: 5e-12, RL: 1e6, VDD: 1.8}
	succ := 0
	for i := 0; i < b.N; i++ {
		out, err := agents.NewSession(llm.NewDomainModel(int64(i), 0), sp, agents.DefaultOptions()).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if out.Success && out.Topology.TwoStage {
			succ++
		}
	}
	b.ReportMetric(float64(succ)/float64(b.N), "success")
}

// BenchmarkBackendComparison runs the head-to-head sizing-backend sweep
// on G-1 (all four registered backends recovering the same detuned
// design) and reports the hybrid backend's evals-to-spec advantage over
// plain BO — the multiplier behind the backend subsystem's acceptance
// bar. The name deliberately does not match the bench.sh hot-path
// regex: it is recorded for cross-PR comparison, never gated on ns/op.
func BenchmarkBackendComparison(b *testing.B) {
	cfg := experiment.DefaultBackendConfig(42)
	cfg.Trials = 2
	cfg.Budget = 60
	cfg.Groups = []string{"G-1"}
	var adv float64
	for i := 0; i < b.N; i++ {
		table, err := experiment.RunBackends(cfg)
		if err != nil {
			b.Fatal(err)
		}
		adv = table.EvalAdvantage("hybrid", "bo", "G-1")
	}
	b.ReportMetric(adv, "hybridEvalAdvantage")
}

// BenchmarkAblationBudgetCurve traces the GA baseline's success rate as
// its simulation budget grows — the convergence-style experiment that
// locates how much search a black-box method needs to start competing.
func BenchmarkAblationBudgetCurve(b *testing.B) {
	g1, _ := spec.Group("G-1")
	var last float64
	for i := 0; i < b.N; i++ {
		pts, err := experiment.BudgetCurve(experiment.MethodGA, g1, []int{40, 120}, 2, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		last = float64(pts[len(pts)-1].Successes) / float64(pts[len(pts)-1].Trials)
	}
	b.ReportMetric(last, "successAtMaxBudget")
}

// BenchmarkSparseLadderAC sweeps a 60-stage RC ladder — 61 unknowns, far
// past the sparse-engine threshold — so it tracks the symbolic-reuse AC
// path on a genuinely sparse system, complementing the small dense-path
// benchmarks above.
func BenchmarkSparseLadderAC(b *testing.B) {
	nl := netlist.New("sparse-ladder")
	nl.AddV("V1", "in", "0", 1)
	prev := "in"
	const stages = 60
	for i := 0; i < stages; i++ {
		node := fmt.Sprintf("n%d", i)
		if i == stages-1 {
			node = "out"
		}
		nl.AddR(fmt.Sprintf("R%d", i), prev, node, 1e3*(1+float64(i%7)))
		nl.AddC(fmt.Sprintf("C%d", i), node, "0", 1e-12*(1+float64(i%5)))
		prev = node
	}
	c, err := mna.Compile(nl)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Sweep("out", 1e-1, 1e9, 24); err != nil {
			b.Fatal(err)
		}
	}
}

var calibSink float64

// BenchmarkCalibration is a fixed pure-CPU workload that scripts/bench.sh
// records alongside the real benchmarks: the perf gate normalizes hot-path
// ns/op by the calibration ratio between the two records, so a shared
// host that runs 20% slower today than when the baseline was recorded
// does not read as a code regression (and a throttled host cannot hide
// one).
func BenchmarkCalibration(b *testing.B) {
	x := 1.0001
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1000; j++ {
			x = x*1.0000001 + 1e-12
			if x > 2 {
				x -= 1
			}
		}
	}
	calibSink = x
}
