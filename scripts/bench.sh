#!/bin/sh
# Runs the root seed benchmarks at -benchtime 50x — enough iterations that
# pooled workspaces are warm and the recorded ns/op reflects steady-state
# hot-path cost rather than first-call setup — and writes the results as a
# JSON array of {name, ns_op, allocs_op} for cross-PR comparison.
#
# With a baseline file, the hot-path (MNA solver / measure) benchmarks are
# additionally diffed against it and the script fails on a >20% ns/op or
# allocs/op regression — the CI perf gate for the simulation inner loop.
#
# Usage: scripts/bench.sh [out.json [baseline.json]]   (default BENCH.json)
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH.json}"
baseline="${2:-}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -bench . -benchmem -benchtime 50x -run '^$' . | tee "$tmp"

awk '
/^Benchmark/ {
    name = $1
    ns = ""
    allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"ns_op\": %s, \"allocs_op\": %s}", name, ns, (allocs == "" ? "0" : allocs)
}
BEGIN { printf "[\n" }
END { printf "\n]\n" }
' "$tmp" > "$out"

# Serving-layer benchmark: replay a seeded duplicate-heavy workload
# item-by-item through POST /design and batched through /design/batch
# (see cmd/loadgen) and merge the throughput/latency/coalesce entries
# into the same JSON array. Their names don't match the hot regex below,
# so they are recorded for cross-PR comparison but never gated on ns/op.
ltmp="$(mktemp)"
trap 'rm -f "$tmp" "$ltmp"' EXIT
go run ./cmd/loadgen -mode compare -n 400 -dup 0.8 -batch 64 -concurrency 8 -seed 1 -out "$ltmp"
merged="$(mktemp)"
sed '$d' "$out" > "$merged"   # drop the closing ]
printf ',\n' >> "$merged"
sed '1d' "$ltmp" >> "$merged" # drop the opening [, keep the closing ]
mv "$merged" "$out"

# Fleet benchmark: the same seeded workload through one worker node and
# through two nodes behind the consistent-hash router (see cmd/loadgen
# fleet mode). Design runs carry modeled remote-LLM latency — the
# latency-bound regime real LLM serving lives in — so the recorded
# speedup_vs_one_node measures horizontal scaling plus router overhead.
ftmp="$(mktemp)"
trap 'rm -f "$tmp" "$ltmp" "$ftmp"' EXIT
go run ./cmd/loadgen -mode fleet -nodes 2 -node-workers 4 -model-latency 100ms \
    -n 200 -dup 0 -concurrency 32 -seed 1 -repeat 2 -out "$ftmp"
merged="$(mktemp)"
sed '$d' "$out" > "$merged"
printf ',\n' >> "$merged"
sed '1d' "$ftmp" >> "$merged"
mv "$merged" "$out"

# Sizing-backend comparison: every registered backend recovers the same
# detuned designs over all five spec groups (see cmd/evaltable
# -backends); the per-cell success/FoM/evals-to-spec entries are merged
# for cross-PR comparison. Fully seeded, so the numbers are exactly
# reproducible; the BackendSizing_* names never match the hot regex.
btmp="$(mktemp)"
trap 'rm -f "$tmp" "$ltmp" "$ftmp" "$btmp"' EXIT
go run ./cmd/evaltable -backends -workers 8 -seed 42 -out "$btmp"
merged="$(mktemp)"
sed '$d' "$out" > "$merged"
printf ',\n' >> "$merged"
sed '1d' "$btmp" >> "$merged"
mv "$merged" "$out"
echo "bench: wrote $out"

if [ -n "$baseline" ]; then
    if [ ! -f "$baseline" ]; then
        echo "bench: baseline $baseline missing, skipping perf gate" >&2
        exit 0
    fi
    # The gate covers the simulation hot path only: agent/experiment
    # benchmarks are dominated by modeled LLM behavior and too noisy at
    # -benchtime 1x to gate on.
    awk -v hot='^Benchmark(MNASolve|CircuitSolveAt|CircuitSweep|PoleZero|NoiseSweep|Fig1Skeleton|TransientStep)' '
    function field(line, key,   rest) {
        rest = line
        sub(".*\"" key "\": *", "", rest)
        sub("[,}].*", "", rest)
        return rest
    }
    /"name"/ {
        name = field($0, "name")
        sub("\".*", "", name)  # strip trailing quote remnants
        gsub("\"", "", name)
        ns = field($0, "ns_op") + 0
        al = field($0, "allocs_op") + 0
        if (FNR == NR) { base_ns[name] = ns; base_al[name] = al; next }
        if (name !~ hot || !(name in base_ns)) next
        if (ns > 1.2 * base_ns[name]) {
            printf "bench: REGRESSION %s ns/op %g -> %g (>20%%)\n", name, base_ns[name], ns
            bad = 1
        }
        if (al > 1.2 * base_al[name] && al > base_al[name] + 2) {
            printf "bench: REGRESSION %s allocs/op %g -> %g (>20%%)\n", name, base_al[name], al
            bad = 1
        }
        printf "bench: %-28s ns/op %12g -> %12g (%.2fx)  allocs %8g -> %8g\n", \
            name, base_ns[name], ns, (ns > 0 ? base_ns[name] / ns : 0), base_al[name], al
    }
    END { exit bad }
    ' "$baseline" "$out" || { echo "bench: hot-path perf gate FAILED vs $baseline" >&2; exit 1; }
    echo "bench: hot-path perf gate ok vs $baseline"
fi
