#!/bin/sh
# Runs the root seed benchmarks once each (-benchtime 1x: a smoke-level
# data point, not a statistically tight one) and writes the results as a
# JSON array of {name, ns_op, allocs_op} for cross-PR comparison.
#
# Usage: scripts/bench.sh [out.json]   (default BENCH.json)
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -bench . -benchmem -benchtime 1x -run '^$' . | tee "$tmp"

awk '
/^Benchmark/ {
    name = $1
    ns = ""
    allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"ns_op\": %s, \"allocs_op\": %s}", name, ns, (allocs == "" ? "0" : allocs)
}
BEGIN { printf "[\n" }
END { printf "\n]\n" }
' "$tmp" > "$out"
echo "bench: wrote $out"
