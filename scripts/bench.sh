#!/bin/sh
# Runs the root seed benchmarks at -benchtime 50x — enough iterations that
# pooled workspaces are warm and the recorded ns/op reflects steady-state
# hot-path cost rather than first-call setup — and writes the results as a
# JSON array of {name, ns_op, allocs_op} for cross-PR comparison.
#
# With a baseline file, the hot-path (MNA solver / measure) benchmarks are
# additionally diffed against it and the script fails on a >20% ns/op or
# allocs/op regression — the CI perf gate for the simulation inner loop.
#
# Usage: scripts/bench.sh [out.json [baseline.json]]   (default BENCH.json)
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH.json}"
baseline="${2:-}"
hot='^Benchmark(MNASolve|CircuitSolveAt|CircuitSweep|PoleZero|NoiseSweep|Fig1Skeleton|TransientStep|MonteCarloYield)'
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -bench . -benchmem -benchtime 50x -run '^$' . | tee "$tmp"

# Re-run the gated hot-path benchmarks time-based: 50 iterations of a
# sub-microsecond benchmark measure scheduler noise, not the solver.
# The awk below records the per-name MINIMUM over every sighting (the
# 50x entry plus these -count reruns) — the sample least disturbed by
# co-tenant noise — so recorded values are reproducible floors rather
# than lucky or unlucky single samples. Calibration rides along so the
# record carries this run's host speed.
go test -bench "(${hot}|^BenchmarkCalibration)\$" -benchmem -benchtime 1s -count 3 -run '^$' . | tee -a "$tmp"

awk '
/^Benchmark/ {
    name = $1
    ns = ""
    allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (allocs == "") allocs = "0"
    # Minimum over all sightings (the 50x full-suite entry plus the
    # -count time-based reruns). Interference on the shared host only
    # ever adds time, so the minimum is the cleanest floor estimate; the
    # runs are spread over a couple of minutes, so a single co-tenant
    # burst cannot poison every sample of a benchmark.
    if (!(name in seen)) {
        order[++n] = name; seen[name] = 1
        NS[name] = ns
        AL[name] = allocs
        next
    }
    if (ns + 0 < NS[name] + 0) NS[name] = ns
    if (allocs + 0 < AL[name] + 0) AL[name] = allocs
}
BEGIN { printf "[\n" }
END {
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "  {\"name\": \"%s\", \"ns_op\": %s, \"allocs_op\": %s}%s\n", \
            name, NS[name], AL[name], (i < n ? "," : "")
    }
    printf "]\n"
}
' "$tmp" > "$out"

# Serving-layer benchmark: replay a seeded duplicate-heavy workload
# item-by-item through POST /design and batched through /design/batch
# (see cmd/loadgen) and merge the throughput/latency/coalesce entries
# into the same JSON array. Their names don't match the hot regex below,
# so they are recorded for cross-PR comparison but never gated on ns/op.
ltmp="$(mktemp)"
trap 'rm -f "$tmp" "$ltmp"' EXIT
go run ./cmd/loadgen -mode compare -n 400 -dup 0.8 -batch 64 -concurrency 8 -seed 1 -out "$ltmp"
merged="$(mktemp)"
sed '$d' "$out" > "$merged"   # drop the closing ]
printf ',\n' >> "$merged"
sed '1d' "$ltmp" >> "$merged" # drop the opening [, keep the closing ]
mv "$merged" "$out"

# Fleet benchmark: the same seeded workload through one worker node and
# through two nodes behind the consistent-hash router (see cmd/loadgen
# fleet mode). Design runs carry modeled remote-LLM latency — the
# latency-bound regime real LLM serving lives in — so the recorded
# speedup_vs_one_node measures horizontal scaling plus router overhead.
ftmp="$(mktemp)"
trap 'rm -f "$tmp" "$ltmp" "$ftmp"' EXIT
go run ./cmd/loadgen -mode fleet -nodes 2 -node-workers 4 -model-latency 100ms \
    -n 200 -dup 0 -concurrency 32 -seed 1 -repeat 2 -out "$ftmp"
merged="$(mktemp)"
sed '$d' "$out" > "$merged"
printf ',\n' >> "$merged"
sed '1d' "$ftmp" >> "$merged"
mv "$merged" "$out"

# Sizing-backend comparison: every registered backend recovers the same
# detuned designs over all five spec groups (see cmd/evaltable
# -backends); the per-cell success/FoM/evals-to-spec entries are merged
# for cross-PR comparison. Fully seeded, so the numbers are exactly
# reproducible; the BackendSizing_* names never match the hot regex.
btmp="$(mktemp)"
trap 'rm -f "$tmp" "$ltmp" "$ftmp" "$btmp"' EXIT
go run ./cmd/evaltable -backends -workers 8 -seed 42 -out "$btmp"
merged="$(mktemp)"
sed '$d' "$out" > "$merged"
printf ',\n' >> "$merged"
sed '1d' "$btmp" >> "$merged"
mv "$merged" "$out"

# Generative benchmark: the roster designers over seeded generated
# topologies (see cmd/evaltable -genbench). Records grounded-pass-rate,
# rubric score, and credited FoM per designer; the GenBench_* names
# never match the hot regex.
gtmp="$(mktemp)"
trap 'rm -f "$tmp" "$ltmp" "$ftmp" "$btmp" "$gtmp"' EXIT
go run ./cmd/evaltable -genbench -workers 8 -seed 42 -out "$gtmp"
merged="$(mktemp)"
sed '$d' "$out" > "$merged"
printf ',\n' >> "$merged"
sed '1d' "$gtmp" >> "$merged"
mv "$merged" "$out"

# Cache-hostile serving profile: the same generated topologies as unique
# /simulate/batch bodies, against the duplicate-mix contrast (see
# cmd/loadgen -profile genbench). The LoadgenGenbenchUnique entry's
# coalesce_hits records ~0 by construction.
htmp="$(mktemp)"
trap 'rm -f "$tmp" "$ltmp" "$ftmp" "$btmp" "$gtmp" "$htmp"' EXIT
go run ./cmd/loadgen -profile genbench -n 400 -batch 64 -concurrency 8 \
    -seed 1 -repeat 2 -out "$htmp"
merged="$(mktemp)"
sed '$d' "$out" > "$merged"
printf ',\n' >> "$merged"
sed '1d' "$htmp" >> "$merged"
mv "$merged" "$out"
echo "bench: wrote $out"

if [ -n "$baseline" ]; then
    if [ ! -f "$baseline" ]; then
        echo "bench: baseline $baseline missing, skipping perf gate" >&2
        exit 0
    fi
    # The gate covers the simulation hot path only: agent/experiment
    # benchmarks are dominated by modeled LLM behavior and too noisy at
    # -benchtime 1x to gate on.
    awk -v hot="$hot" '
    function field(line, key,   rest) {
        rest = line
        sub(".*\"" key "\": *", "", rest)
        sub("[,}].*", "", rest)
        return rest
    }
    /"name"/ {
        name = field($0, "name")
        gsub("\"", "", name)
        ns = field($0, "ns_op") + 0
        al = field($0, "allocs_op") + 0
        if (FNR == NR) { base_ns[name] = ns; base_al[name] = al; next }
        cur_ns[name] = ns
        cur_al[name] = al
        order[++n] = name
    }
    END {
        # Host-speed normalization. Two independent drift estimates:
        #
        #   - calibration: the ns/op ratio of the pure-CPU calibration
        #     benchmark between the two records — tracks clock-speed
        #     drift of the shared host, when both records carry it;
        #   - median-ratio: the median ns/op ratio over the gated cohort,
        #     excluding >20% speedups (those are code changes, not drift)
        #     — tracks memory/GC-subsystem drag from co-tenant load that
        #     a cache-resident FP loop cannot see.
        #
        # The gate scales the baseline by the LOOSER of the two: an
        # isolated real regression moves neither estimate, while uniform
        # host slowdowns move at least one. A uniform whole-cohort code
        # regression could hide in the median — the printed scale line
        # exists so a reviewer spots a median far above the calibration.
        cal = 0
        if (base_ns["BenchmarkCalibration"] > 0 && cur_ns["BenchmarkCalibration"] > 0)
            cal = cur_ns["BenchmarkCalibration"] / base_ns["BenchmarkCalibration"]
        nr = 0
        for (i = 1; i <= n; i++) {
            name = order[i]
            if (name !~ hot || !(name in base_ns)) continue
            if (base_ns[name] > 0 && cur_ns[name] / base_ns[name] > 0.8)
                ratio[++nr] = cur_ns[name] / base_ns[name]
        }
        med = 0
        if (nr >= 3) {
            for (i = 2; i <= nr; i++) {
                v = ratio[i]
                for (j = i - 1; j >= 1 && ratio[j] > v; j--) ratio[j + 1] = ratio[j]
                ratio[j + 1] = v
            }
            med = (nr % 2 ? ratio[(nr + 1) / 2] : (ratio[nr / 2] + ratio[nr / 2 + 1]) / 2)
        }
        scale = (cal > med ? cal : med)
        if (scale == 0) scale = 1
        printf "bench: host speed scale %.3f (calibration %.3f, cohort median %.3f)\n", \
            scale, cal, med
        for (i = 1; i <= n; i++) {
            name = order[i]
            if (name !~ hot || !(name in base_ns)) continue
            ns = cur_ns[name]
            al = cur_al[name]
            if (ns > 1.2 * scale * base_ns[name]) {
                printf "bench: REGRESSION %s ns/op %g -> %g (>20%% host-normalized)\n", name, base_ns[name], ns
                bad = 1
            }
            if (al > 1.2 * base_al[name] && al > base_al[name] + 2) {
                printf "bench: REGRESSION %s allocs/op %g -> %g (>20%%)\n", name, base_al[name], al
                bad = 1
            }
            printf "bench: %-28s ns/op %12g -> %12g (%.2fx)  allocs %8g -> %8g\n", \
                name, base_ns[name], ns, (ns > 0 ? scale * base_ns[name] / ns : 0), base_al[name], al
        }
        exit bad
    }
    ' "$baseline" "$out" || { echo "bench: hot-path perf gate FAILED vs $baseline" >&2; exit 1; }
    echo "bench: hot-path perf gate ok vs $baseline"
fi
