#!/bin/sh
# CI gate: vet, build, full test suite, a race pass over the
# concurrency-heavy packages, a chaos smoke over the resilience layer,
# and an errcheck-style grep gate. Mirrors `make check`.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test ./...
go test -race ./internal/jobs ./internal/server ./internal/experiment \
    ./internal/resilience ./internal/agents ./internal/telemetry

# Chaos smoke: the seeded fault injector, retry, and breaker tests must
# be deterministic — -count=2 re-runs them to catch order dependence.
go test ./internal/resilience/... -race -count=2

# Errcheck-style gate: no silently dropped trailing returns (almost
# always an ignored error) in the agent loop or the server.
if grep -rnE ', _ =|, _ :=' --include='*.go' internal/agents internal/server \
    | grep -v _test.go; then
    echo 'check: ignored trailing return value (fix or handle the error)' >&2
    exit 1
fi
echo check ok
