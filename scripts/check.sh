#!/bin/sh
# CI gate: vet, build, full test suite, a race pass over the
# concurrency-heavy packages, a two-node router smoke, a chaos smoke
# over the resilience layer, a hot-path perf gate against the committed
# benchmark baseline, and an errcheck-style grep gate. Mirrors
# `make check`.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test ./...
# The experiment package's race pass also exercises the sharded
# Monte-Carlo yield and parallel corner sweeps (worker-identity tests).
go test -race ./internal/jobs ./internal/server ./internal/experiment \
    ./internal/resilience ./internal/agents ./internal/telemetry \
    ./internal/mna ./internal/measure ./internal/sizing ./internal/cluster \
    ./internal/backend ./internal/gmid ./internal/opt \
    ./internal/topology ./internal/bench

# Two-node router smoke: a quick fleet loadgen run proves two worker
# nodes behind the consistent-hash router serve the full mix end to end
# (routing, health probes, NDJSON pass-through) before the long gates.
go run ./cmd/loadgen -mode fleet -nodes 2 -n 60 -dup 0.5 -concurrency 8 \
    -node-workers 2 -model-latency 5ms -repeat 1

# Chaos smoke: the seeded fault injector, retry, and breaker tests must
# be deterministic — -count=2 re-runs them to catch order dependence.
go test ./internal/resilience/... -race -count=2

# Fleet chaos smoke: a 3-node fleet under the seeded kill/restart/
# partition/brownout script, with the invariant checkers over the merged
# end state. -count=2 proves the scenario replays identically. The long
# soak profile runs via `make chaos` (ARTISAN_CHAOS_LONG=1).
go test ./internal/chaos -race -count=2

# Fuzz smoke: 10 s of coverage-guided input generation per target over
# the parsers that face raw bytes (SPICE netlists, spec JSON, and the
# journal replay path), seeded from the checked-in corpus under
# testdata/fuzz/. Crashers land in testdata/fuzz/<Target>/ and fail this
# gate until fixed.
for target in \
    'FuzzParse ./internal/netlist' \
    'FuzzDeviceLineRoundTrip ./internal/netlist' \
    'FuzzSpecJSON ./internal/spec' \
    'FuzzJournalReplay ./internal/cluster' \
    'FuzzFromJSON ./internal/topology'; do
    set -- $target
    go test -run '^$' -fuzz "^$1\$" -fuzztime 10s "$2"
done

# Perf gate: re-run the seed benchmarks and fail on a >20% ns/op or
# allocs/op regression in the MNA/measure hot path vs the committed
# baseline (see scripts/bench.sh for the gated benchmark list).
benchtmp="$(mktemp)"
trap 'rm -f "$benchtmp"' EXIT
scripts/bench.sh "$benchtmp" BENCH_pr9.json

# Errcheck-style gate: no silently dropped trailing returns (almost
# always an ignored error) in the agent loop or the server.
if grep -rnE ', _ =|, _ :=' --include='*.go' internal/agents internal/server \
    | grep -v _test.go; then
    echo 'check: ignored trailing return value (fix or handle the error)' >&2
    exit 1
fi
echo check ok
