module artisan

go 1.22
