GO ?= go

.PHONY: all build vet test race chaos check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages must stay race-clean.
race:
	$(GO) test -race ./internal/jobs ./internal/server ./internal/experiment \
		./internal/resilience ./internal/agents ./internal/telemetry

# Chaos smoke: deterministic fault-injection suite, run twice.
chaos:
	$(GO) test ./internal/resilience/... -race -count=2

check: vet build test race chaos

# bench runs the seed benchmarks once and records (name, ns/op,
# allocs/op) as JSON for cross-PR comparison.
bench:
	scripts/bench.sh BENCH_pr3.json
