GO ?= go

.PHONY: all build vet test race chaos check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages must stay race-clean. mna/measure are
# here for the parallel sweep and the shared workspace pool;
# backend/gmid/opt for the parallel sizing-backend sweep.
race:
	$(GO) test -race ./internal/jobs ./internal/server ./internal/experiment \
		./internal/resilience ./internal/agents ./internal/telemetry \
		./internal/mna ./internal/measure ./internal/sizing ./internal/cluster \
		./internal/backend ./internal/gmid ./internal/opt

# Chaos: the deterministic fault-injection suite run twice, then the
# fleet chaos harness's long profile — a bigger fleet under a denser
# kill/restart/partition/brownout script with the invariant checkers
# over the merged end state (see internal/chaos and DESIGN.md).
chaos:
	$(GO) test ./internal/resilience/... -race -count=2
	ARTISAN_CHAOS_LONG=1 $(GO) test ./internal/chaos -race -count=1

check: vet build test race chaos

# bench records (name, ns/op, allocs/op) as JSON for cross-PR comparison
# and fails on a >20% hot-path regression vs the previous PR's baseline.
bench:
	scripts/bench.sh BENCH_pr9.json BENCH_pr8.json
