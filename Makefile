GO ?= go

.PHONY: all build vet test race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages must stay race-clean.
race:
	$(GO) test -race ./internal/jobs ./internal/server ./internal/experiment

check: vet build test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
