// Package artisan is a from-scratch Go reproduction of "Artisan: Automated
// Operational Amplifier Design via Domain-specific Large Language Model"
// (Chen et al., DAC 2024).
//
// The public surface lives under internal/ packages wired together by
// internal/core (the framework), with command-line tools under cmd/ and
// runnable examples under examples/. The root package holds the
// repository-level benchmark harness (bench_test.go) that regenerates
// every table and figure of the paper's evaluation; see DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
package artisan
